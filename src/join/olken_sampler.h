// Extended Olken (EO) join sampling (§3.2).
//
// The walk draws a uniform row of the first relation, then at each step a
// uniform row among the d_i rows of the next relation matching all bound
// attributes, and finally accepts with probability prod(d_i / M_i), where
// M_i is the max degree of step i's probe key. Every accepted tuple has
// probability 1 / (|R_w0| * prod M_i) -- uniform. Dangling tuples (d_i = 0)
// end the walk, which realizes the paper's extension of Olken's algorithm
// to non key-foreign-key joins (zero weight for non-joinable tuples).
//
// Compared to EW: no weight precomputation (setup is just the composite
// indexes), but a rejection rate that grows with degree skew -- exactly the
// EW/EO trade-off Fig 5 explores.

#ifndef SUJ_JOIN_OLKEN_SAMPLER_H_
#define SUJ_JOIN_OLKEN_SAMPLER_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "index/composite_index.h"
#include "join/join_sampler.h"

namespace suj {

/// \brief Accept/reject sampler with degree-bound weights.
class OlkenJoinSampler : public JoinSampler {
 public:
  static Result<std::unique_ptr<OlkenJoinSampler>> Create(
      JoinSpecPtr join, CompositeIndexCache* cache);

  std::optional<Tuple> TrySample(Rng& rng) override;

  /// The extended Olken bound |R_w0| * prod M_i.
  double SizeUpperBound() const override { return size_bound_; }

  /// True iff every step probes through a precomputed row->group array.
  /// The columnar walk consumes the same RNG stream as the generic walk
  /// and produces identical outcomes.
  bool columnar() const { return columnar_; }

 private:
  struct Step {
    int relation;                 // relation index in the spec
    CompositeIndexPtr index;      // probe index on the bound attributes
    std::vector<int> key_fields;  // output-schema indexes of the bound attrs
    size_t max_degree;            // M_i
    // Columnar probe (see WanderJoinSampler::Step): walk position whose
    // chosen row feeds `probe`, or -1 to probe generically.
    int source_pos = -1;
    ProbeArrayPtr probe;
  };

  explicit OlkenJoinSampler(JoinSpecPtr join) : JoinSampler(std::move(join)) {}

  bool ApplyRow(int relation, uint32_t row, std::vector<Value>* assignment,
                std::vector<bool>* assigned) const;

  std::optional<Tuple> TrySampleGeneric(Rng& rng);
  std::optional<Tuple> TrySampleColumnar(Rng& rng);

  std::vector<Step> steps_;  // walk positions 1..m-1
  // First-assigner materialization plan per walk position (columnar walk).
  std::vector<std::vector<std::pair<uint16_t, uint16_t>>> writes_;
  bool columnar_ = false;
  double size_bound_ = 0.0;
};

}  // namespace suj

#endif  // SUJ_JOIN_OLKEN_SAMPLER_H_
