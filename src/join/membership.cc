#include "join/membership.h"

namespace suj {

Result<std::shared_ptr<const JoinMembershipProber>>
JoinMembershipProber::Build(JoinSpecPtr join) {
  if (join == nullptr) return Status::InvalidArgument("null join");
  auto prober = std::shared_ptr<JoinMembershipProber>(
      new JoinMembershipProber(std::move(join)));
  const JoinSpec& spec = *prober->join_;
  const Schema& out_schema = spec.output_schema();
  for (const auto& rel : spec.relations()) {
    std::vector<std::string> attrs = rel->schema().FieldNames();
    auto index = RowMembershipIndex::Build(rel, attrs);
    if (!index.ok()) return index.status();
    prober->indexes_.push_back(std::move(index).value());
    std::vector<int> fields;
    fields.reserve(attrs.size());
    for (const auto& a : attrs) {
      int idx = out_schema.FieldIndex(a);
      if (idx < 0) {
        return Status::Internal("attribute '" + a +
                                "' missing from output schema");
      }
      fields.push_back(idx);
    }
    prober->projection_fields_.push_back(std::move(fields));
  }
  return std::shared_ptr<const JoinMembershipProber>(prober);
}

bool JoinMembershipProber::Contains(const Tuple& output_tuple) const {
  if (!join_->SatisfiesPredicates(output_tuple)) return false;
  for (size_t r = 0; r < indexes_.size(); ++r) {
    if (!indexes_[r]->Contains(
            output_tuple.Project(projection_fields_[r]))) {
      return false;
    }
  }
  return true;
}

Result<std::vector<JoinMembershipProberPtr>> BuildProbers(
    const std::vector<JoinSpecPtr>& joins) {
  std::vector<JoinMembershipProberPtr> probers;
  probers.reserve(joins.size());
  for (const auto& j : joins) {
    auto p = JoinMembershipProber::Build(j);
    if (!p.ok()) return p.status();
    probers.push_back(std::move(p).value());
  }
  return probers;
}

}  // namespace suj
