#include "join/join_sampler.h"

namespace suj {

Result<Tuple> JoinSampler::Sample(Rng& rng, uint64_t max_attempts) {
  if (IsEmpty()) {
    return Status::FailedPrecondition("join '" + join_->name() +
                                      "' is empty; nothing to sample");
  }
  for (uint64_t i = 0; i < max_attempts; ++i) {
    std::optional<Tuple> t = TrySample(rng);
    if (t.has_value()) return std::move(*t);
  }
  return Status::Internal("join sampler exceeded " +
                          std::to_string(max_attempts) +
                          " attempts without an accepted tuple");
}

}  // namespace suj
