// Exact-weight (EW) join sampling, the strongest instantiation of Zhao et
// al.'s framework (§3.2, §9 "EW").
//
// Each tuple t of each relation is weighted by the number of join results it
// yields within the spanning tree of the join: leaves weigh 1; an internal
// row's weight is the product over children of the summed weights of the
// child rows matching it. Sampling draws the root row proportionally to its
// weight and recurses into children proportionally to theirs, yielding a
// uniform sample with NO rejection when the tree captures every join
// constraint (chain and acyclic joins). For cyclic joins the tree weights
// are upper bounds (Zhao et al.'s skeleton join); a consistency check on
// the non-tree equalities rejects invalid assignments, preserving
// uniformity at the cost of a rejection rate.
//
// Two sampling paths share the weight index:
//  * the row path probes composite indexes with encoded key tuples and
//    CDF-scans candidate weights (the original implementation, kept as the
//    reference/benchmark anchor);
//  * the columnar path (default when available) resolves every probe
//    through flat integer arrays built at index-build time — parent row id
//    -> child group id -> alias-table draw -> child row id — so a whole
//    walk touches no Tuple, no Value, no string, and no hash table, and
//    every weighted draw is O(1).

#ifndef SUJ_JOIN_EXACT_WEIGHT_H_
#define SUJ_JOIN_EXACT_WEIGHT_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/alias_table.h"
#include "common/result.h"
#include "index/composite_index.h"
#include "join/join_sampler.h"

namespace suj {

/// Resolves a CDF draw `x` in [0, total] against cumulative weights.
/// Returns upper_bound(cumulative, x), except that a draw at/above the
/// final cumulative value (possible when `x = u * total` rounds up to
/// `total`) resolves to the LAST POSITIVE-WEIGHT row instead of being
/// clamped onto a possibly zero-weight tail row. `weights[i]` must be the
/// per-row weights whose prefix sums are `cumulative`.
size_t ResolveCumulativeDraw(const std::vector<double>& cumulative,
                             const std::vector<double>& weights, double x);

/// \brief Precomputed per-row exact weights over the join's spanning tree.
class ExactWeightIndex {
 public:
  /// Builds weights for `join`, creating composite indexes through `cache`.
  static Result<std::shared_ptr<const ExactWeightIndex>> Build(
      JoinSpecPtr join, CompositeIndexCache* cache);

  const JoinSpecPtr& join() const { return join_; }

  /// Sum of root-row weights: the exact join size when exact() is true,
  /// otherwise an upper bound (skeleton size).
  double TotalWeight() const { return total_weight_; }

  /// True iff TotalWeight() equals |J| exactly: the spanning tree captures
  /// all constraints and the join has no on-the-fly predicates.
  bool exact() const { return exact_; }

  /// Per-relation, per-row weights (indexed by relation index, then row).
  const std::vector<double>& weights(int relation) const {
    return weights_[relation];
  }

  /// Composite index of relation r on its tree-edge attributes (null for
  /// the root).
  const CompositeIndexPtr& child_index(int relation) const {
    return child_indexes_[relation];
  }

  /// Cumulative weights of the root relation's rows (for O(log n) root
  /// draws by binary search on the row path).
  const std::vector<double>& root_cumulative() const {
    return root_cumulative_;
  }

  /// \brief Flat-array descent plan for one tree edge (child relation r).
  ///
  /// `parent_probe` maps a parent row id to r's group id in child_index(r)
  /// (kNoGroup for dangling parents). Groups are re-sliced to POSITIVE-
  /// weight rows only: group g's candidate rows are
  /// rows[offsets[g] .. offsets[g+1]) with a matching alias-table slice at
  /// the same offsets, so a weighted child draw is one alias lookup and one
  /// array read. A group whose rows all have zero weight is an empty slice
  /// (a dead end, exactly like a zero CDF sum on the row path).
  struct ColumnarEdge {
    ProbeArrayPtr parent_probe;
    std::vector<uint32_t> offsets;
    std::vector<uint32_t> rows;
    FlatAliasGroups alias;
  };

  /// True iff the columnar descent plan was built. Requires every probe
  /// attribute to be resolvable from the parent row alone, which holds for
  /// all tree-consistent joins (and is re-derived per edge for cyclic
  /// ones); when false, samplers use the row path.
  bool columnar_ready() const { return columnar_ready_; }
  /// O(1) root draw over root-row weights (valid iff columnar_ready()).
  const AliasTable& root_alias() const { return root_alias_; }
  /// Descent plan of non-root relation r (valid iff columnar_ready()).
  const ColumnarEdge& columnar_edge(int relation) const {
    return columnar_edges_[relation];
  }

  /// Output materialization plan: writes(r) lists (relation column, output
  /// schema index) pairs relation r contributes as FIRST assigner in tree
  /// order; checks(r) lists pairs whose output field was assigned by an
  /// earlier relation and must match (non-empty only for joins whose tree
  /// misses constraints). Precomputed so the hot loop never resolves field
  /// names.
  const std::vector<std::pair<uint16_t, uint16_t>>& writes(int relation) const {
    return writes_[relation];
  }
  const std::vector<std::pair<uint16_t, uint16_t>>& checks(int relation) const {
    return checks_[relation];
  }

 private:
  explicit ExactWeightIndex(JoinSpecPtr join) : join_(std::move(join)) {}

  Status BuildColumnar(CompositeIndexCache* cache);

  JoinSpecPtr join_;
  double total_weight_ = 0.0;
  bool exact_ = true;
  std::vector<std::vector<double>> weights_;
  std::vector<CompositeIndexPtr> child_indexes_;
  std::vector<double> root_cumulative_;

  bool columnar_ready_ = false;
  AliasTable root_alias_;
  std::vector<ColumnarEdge> columnar_edges_;
  std::vector<std::vector<std::pair<uint16_t, uint16_t>>> writes_;
  std::vector<std::vector<std::pair<uint16_t, uint16_t>>> checks_;
};

using ExactWeightIndexPtr = std::shared_ptr<const ExactWeightIndex>;

/// Options for ExactWeightSampler (namespace-scope so it can serve as a
/// default argument inside the class).
struct ExactWeightSamplerOptions {
  /// Use the columnar descent when the index provides it. The row path
  /// remains available as the reference implementation; both paths
  /// produce uniform samples but consume the RNG differently, so a given
  /// byte stream is reproducible only within one path.
  bool columnar = true;
};

/// \brief Uniform join sampler driven by exact weights.
class ExactWeightSampler : public JoinSampler {
 public:
  using Options = ExactWeightSamplerOptions;

  /// Builds the weight index (or reuses a prebuilt one) and the sampler.
  static Result<std::unique_ptr<ExactWeightSampler>> Create(
      JoinSpecPtr join, CompositeIndexCache* cache, Options options = Options());
  static Result<std::unique_ptr<ExactWeightSampler>> Create(
      ExactWeightIndexPtr weights, Options options = Options());

  std::optional<Tuple> TrySample(Rng& rng) override;

  /// Columnar batched walk: runs up to `count` attempts level-
  /// synchronously, prefetching the next level's probe/alias cache lines
  /// across in-flight walks so dependent misses overlap, and appends the
  /// successful tuples to `out`. Returns the number appended. Consumes the
  /// RNG in level-major order, so a batch's output is a pure function of
  /// (rng state, count) but differs from `count` sequential TrySample
  /// calls. Falls back to a TrySample loop on the row path.
  size_t TrySampleBatch(size_t count, Rng& rng, std::vector<Tuple>* out);

  /// Row-path descent from an externally chosen root row: applies
  /// `root_row` of the tree root and samples the remaining relations with
  /// exactly the RNG consumption TrySample's row path has after its root
  /// draw. Shard routers resolve the root draw against a global cumulative
  /// array and delegate here, which is what keeps sharded output
  /// byte-identical to the unsharded row path.
  std::optional<Tuple> TrySampleRowFromRoot(uint32_t root_row, Rng& rng);

  double SizeUpperBound() const override { return weights_->TotalWeight(); }

  const ExactWeightIndexPtr& weight_index() const { return weights_; }
  /// True iff this sampler draws through the columnar plan.
  bool columnar() const { return columnar_; }

 private:
  ExactWeightSampler(JoinSpecPtr join, ExactWeightIndexPtr weights,
                     bool columnar)
      : JoinSampler(std::move(join)),
        weights_(std::move(weights)),
        columnar_(columnar) {}

  std::optional<Tuple> TrySampleRow(Rng& rng);
  std::optional<Tuple> TrySampleColumnar(Rng& rng);
  /// Shared body of TrySampleRow / TrySampleRowFromRoot: the tree descent
  /// below an already-resolved root row.
  std::optional<Tuple> DescendRow(uint32_t root_row, Rng& rng);
  /// Materializes one walk's chosen rows into an output tuple; the row of
  /// relation r is `chosen[r * stride + offset]` (stride 1 for a single
  /// walk, the batch width for batched walks). Returns nullopt on a
  /// non-tree constraint or predicate rejection.
  std::optional<Tuple> Materialize(const uint32_t* chosen, size_t stride,
                                   size_t offset);

  ExactWeightIndexPtr weights_;
  bool columnar_ = false;
  bool need_checks_ = false;
  // Scratch reused across TrySampleBatch calls (sized on first use).
  std::vector<uint32_t> batch_rows_;   // [relation * count + walk]
  std::vector<uint32_t> batch_begin_;  // per walk: group slice begin
  std::vector<uint32_t> batch_len_;    // per walk: group slice length
  std::vector<uint8_t> batch_alive_;
};

}  // namespace suj

#endif  // SUJ_JOIN_EXACT_WEIGHT_H_
