// Exact-weight (EW) join sampling, the strongest instantiation of Zhao et
// al.'s framework (§3.2, §9 "EW").
//
// Each tuple t of each relation is weighted by the number of join results it
// yields within the spanning tree of the join: leaves weigh 1; an internal
// row's weight is the product over children of the summed weights of the
// child rows matching it. Sampling draws the root row proportionally to its
// weight and recurses into children proportionally to theirs, yielding a
// uniform sample with NO rejection when the tree captures every join
// constraint (chain and acyclic joins). For cyclic joins the tree weights
// are upper bounds (Zhao et al.'s skeleton join); a consistency check on
// the non-tree equalities rejects invalid assignments, preserving
// uniformity at the cost of a rejection rate.

#ifndef SUJ_JOIN_EXACT_WEIGHT_H_
#define SUJ_JOIN_EXACT_WEIGHT_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "index/composite_index.h"
#include "join/join_sampler.h"

namespace suj {

/// \brief Precomputed per-row exact weights over the join's spanning tree.
class ExactWeightIndex {
 public:
  /// Builds weights for `join`, creating composite indexes through `cache`.
  static Result<std::shared_ptr<const ExactWeightIndex>> Build(
      JoinSpecPtr join, CompositeIndexCache* cache);

  const JoinSpecPtr& join() const { return join_; }

  /// Sum of root-row weights: the exact join size when exact() is true,
  /// otherwise an upper bound (skeleton size).
  double TotalWeight() const { return total_weight_; }

  /// True iff TotalWeight() equals |J| exactly: the spanning tree captures
  /// all constraints and the join has no on-the-fly predicates.
  bool exact() const { return exact_; }

  /// Per-relation, per-row weights (indexed by relation index, then row).
  const std::vector<double>& weights(int relation) const {
    return weights_[relation];
  }

  /// Composite index of relation r on its tree-edge attributes (null for
  /// the root).
  const CompositeIndexPtr& child_index(int relation) const {
    return child_indexes_[relation];
  }

  /// Cumulative weights of the root relation's rows (for O(log n) root
  /// draws by binary search).
  const std::vector<double>& root_cumulative() const {
    return root_cumulative_;
  }

 private:
  explicit ExactWeightIndex(JoinSpecPtr join) : join_(std::move(join)) {}

  JoinSpecPtr join_;
  double total_weight_ = 0.0;
  bool exact_ = true;
  std::vector<std::vector<double>> weights_;
  std::vector<CompositeIndexPtr> child_indexes_;
  std::vector<double> root_cumulative_;
};

using ExactWeightIndexPtr = std::shared_ptr<const ExactWeightIndex>;

/// \brief Uniform join sampler driven by exact weights.
class ExactWeightSampler : public JoinSampler {
 public:
  /// Builds the weight index (or reuses a prebuilt one) and the sampler.
  static Result<std::unique_ptr<ExactWeightSampler>> Create(
      JoinSpecPtr join, CompositeIndexCache* cache);
  static Result<std::unique_ptr<ExactWeightSampler>> Create(
      ExactWeightIndexPtr weights);

  std::optional<Tuple> TrySample(Rng& rng) override;
  double SizeUpperBound() const override { return weights_->TotalWeight(); }

  const ExactWeightIndexPtr& weight_index() const { return weights_; }

 private:
  ExactWeightSampler(JoinSpecPtr join, ExactWeightIndexPtr weights)
      : JoinSampler(std::move(join)), weights_(std::move(weights)) {}

  ExactWeightIndexPtr weights_;
};

}  // namespace suj

#endif  // SUJ_JOIN_EXACT_WEIGHT_H_
