#include "join/predicate.h"

namespace suj {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kBetween:
      return "BETWEEN";
  }
  return "?";
}

bool Predicate::Eval(const Value& v) const {
  switch (op_) {
    case CompareOp::kEq:
      return v == operand_;
    case CompareOp::kNe:
      return v != operand_;
    case CompareOp::kLt:
      return v < operand_;
    case CompareOp::kLe:
      return v < operand_ || v == operand_;
    case CompareOp::kGt:
      return operand_ < v;
    case CompareOp::kGe:
      return operand_ < v || v == operand_;
    case CompareOp::kBetween:
      return !(v < operand_) && (v < operand2_ || v == operand2_);
  }
  return false;
}

bool Predicate::EvalOnTuple(const Tuple& tuple, const Schema& schema) const {
  int idx = schema.FieldIndex(attribute_);
  if (idx < 0) return true;
  return Eval(tuple.value(static_cast<size_t>(idx)));
}

std::string Predicate::ToString() const {
  std::string out = attribute_;
  out += ' ';
  out += CompareOpName(op_);
  out += ' ';
  out += operand_.ToString();
  if (op_ == CompareOp::kBetween) {
    out += " AND ";
    out += operand2_.ToString();
  }
  return out;
}

bool RowSatisfies(const Relation& relation, size_t row,
                  const std::vector<Predicate>& predicates) {
  const Schema& schema = relation.schema();
  for (const auto& p : predicates) {
    int idx = schema.FieldIndex(p.attribute());
    if (idx < 0) continue;
    if (!p.Eval(relation.GetValue(row, static_cast<size_t>(idx)))) {
      return false;
    }
  }
  return true;
}

Result<RelationPtr> FilterRelation(const RelationPtr& relation,
                                   const std::vector<Predicate>& predicates) {
  if (relation == nullptr) {
    return Status::InvalidArgument("null relation");
  }
  RelationBuilder builder(relation->name() + "#f", relation->schema());
  for (size_t row = 0; row < relation->num_rows(); ++row) {
    if (RowSatisfies(*relation, row, predicates)) {
      SUJ_RETURN_NOT_OK(builder.AppendTuple(relation->GetTuple(row)));
    }
  }
  return builder.Finish();
}

}  // namespace suj
