#include "join/exact_weight.h"

#include <algorithm>

#include "common/logging.h"
#include "common/prefetch.h"
#include "storage/key_codec.h"

namespace suj {

namespace {

// Schema column indexes of `attrs` within `rel`.
std::vector<int> ColumnIndexes(const Relation& rel,
                               const std::vector<std::string>& attrs) {
  std::vector<int> cols;
  cols.reserve(attrs.size());
  for (const auto& a : attrs) {
    int idx = rel.schema().FieldIndex(a);
    SUJ_CHECK(idx >= 0);
    cols.push_back(idx);
  }
  return cols;
}

}  // namespace

size_t ResolveCumulativeDraw(const std::vector<double>& cumulative,
                             const std::vector<double>& weights, double x) {
  size_t i = static_cast<size_t>(
      std::upper_bound(cumulative.begin(), cumulative.end(), x) -
      cumulative.begin());
  // upper_bound can only land on a positive-weight row: a zero-weight row
  // shares its cumulative value with its predecessor, so it is never the
  // FIRST entry exceeding x.
  if (i < cumulative.size()) return i;
  // x >= cumulative.back(): u * total rounded up to total. The old clamp
  // returned the last ROW here, which may have zero weight; resolve to the
  // last positive-weight row instead.
  for (i = weights.size(); i > 0;) {
    if (weights[--i] > 0.0) return i;
  }
  return 0;  // all-zero weights; callers guard on total > 0 before drawing
}

Result<std::shared_ptr<const ExactWeightIndex>> ExactWeightIndex::Build(
    JoinSpecPtr join, CompositeIndexCache* cache) {
  if (join == nullptr) return Status::InvalidArgument("null join");
  if (cache == nullptr) return Status::InvalidArgument("null index cache");

  auto index = std::shared_ptr<ExactWeightIndex>(
      new ExactWeightIndex(std::move(join)));
  const JoinSpec& spec = *index->join_;
  const JoinGraph& graph = spec.graph();
  const int n = spec.num_relations();

  index->weights_.resize(n);
  index->child_indexes_.resize(n);
  for (int r = 0; r < n; ++r) {
    if (graph.tree_parent()[r] >= 0) {
      auto built =
          cache->GetOrBuild(spec.relation(r), graph.tree_edge_attrs()[r]);
      if (!built.ok()) return built.status();
      index->child_indexes_[r] = std::move(built).value();
    }
  }

  // Children before parents: reverse BFS order of the spanning tree.
  std::vector<int> order = graph.tree_order();
  std::reverse(order.begin(), order.end());
  // agg[r]: encoded tree-edge key of relation r -> sum of weights of r's
  // rows with that key. Consumed by r's parent.
  std::vector<std::unordered_map<std::string, double>> agg(n);

  std::string scratch;
  for (int r : order) {
    const Relation& rel = *spec.relation(r);
    auto& w = index->weights_[r];
    w.assign(rel.num_rows(), 1.0);
    for (int c : graph.tree_children()[r]) {
      const auto& child_agg = agg[c];
      std::vector<int> cols = ColumnIndexes(rel, graph.tree_edge_attrs()[c]);
      for (size_t row = 0; row < rel.num_rows(); ++row) {
        if (w[row] == 0.0) continue;
        auto it = child_agg.find(EncodeRowKey(rel, cols, row, &scratch));
        w[row] *= it == child_agg.end() ? 0.0 : it->second;
      }
    }
    if (graph.tree_parent()[r] >= 0) {
      std::vector<int> cols = ColumnIndexes(rel, graph.tree_edge_attrs()[r]);
      auto& my_agg = agg[r];
      for (size_t row = 0; row < rel.num_rows(); ++row) {
        if (w[row] > 0.0) {
          my_agg[EncodeRowKey(rel, cols, row, &scratch)] += w[row];
        }
      }
    }
  }

  // Root cumulative weights for O(log n) sampling on the row path.
  int root = graph.tree_order().empty() ? 0 : graph.tree_order()[0];
  const auto& root_w = index->weights_[root];
  index->root_cumulative_.resize(root_w.size());
  double running = 0.0;
  for (size_t i = 0; i < root_w.size(); ++i) {
    running += root_w[i];
    index->root_cumulative_[i] = running;
  }
  index->total_weight_ = running;
  index->exact_ =
      graph.tree_captures_all_constraints() && !spec.has_predicates();

  Status columnar = index->BuildColumnar(cache);
  if (!columnar.ok()) return columnar;
  return std::shared_ptr<const ExactWeightIndex>(index);
}

Status ExactWeightIndex::BuildColumnar(CompositeIndexCache* cache) {
  const JoinSpec& spec = *join_;
  const JoinGraph& graph = spec.graph();
  const Schema& out_schema = spec.output_schema();
  const int n = spec.num_relations();
  const auto& order = graph.tree_order();

  // Materialization plan: in tree order, the first relation carrying an
  // output field writes it; later carriers only check it (and only cyclic
  // trees ever need those checks evaluated).
  writes_.assign(n, {});
  checks_.assign(n, {});
  std::vector<bool> assigned(out_schema.num_fields(), false);
  // first_assigner[out field] = relation that writes it.
  std::vector<int> first_assigner(out_schema.num_fields(), -1);
  for (int r : order) {
    const Schema& rel_schema = spec.relation(r)->schema();
    for (size_t c = 0; c < rel_schema.num_fields(); ++c) {
      int out_idx = out_schema.FieldIndex(rel_schema.field(c).name);
      SUJ_CHECK(out_idx >= 0);
      auto pair = std::make_pair(static_cast<uint16_t>(c),
                                 static_cast<uint16_t>(out_idx));
      if (!assigned[out_idx]) {
        assigned[out_idx] = true;
        first_assigner[out_idx] = r;
        writes_[r].push_back(pair);
      } else {
        checks_[r].push_back(pair);
      }
    }
  }

  if (total_weight_ <= 0.0) return Status::OK();  // nothing samplable

  // The columnar descent probes a child's group straight from the PARENT
  // row, which matches the row path's assignment-based probe iff each
  // probe attribute's assignment value is the parent's value: guaranteed
  // when the tree captures all constraints, and otherwise only when the
  // parent is the attribute's first assigner.
  if (!graph.tree_captures_all_constraints()) {
    for (int r = 0; r < n; ++r) {
      if (graph.tree_parent()[r] < 0) continue;
      for (const auto& a : graph.tree_edge_attrs()[r]) {
        int out_idx = out_schema.FieldIndex(a);
        if (first_assigner[out_idx] != graph.tree_parent()[r]) {
          return Status::OK();  // row path only for this join
        }
      }
    }
  }

  const int root = order.empty() ? 0 : order[0];
  auto root_alias = AliasTable::Build(weights_[root]);
  if (!root_alias.ok()) return root_alias.status();
  root_alias_ = std::move(root_alias).value();

  columnar_edges_.resize(n);
  std::vector<double> group_weights;
  for (int r = 0; r < n; ++r) {
    const int parent = graph.tree_parent()[r];
    if (parent < 0) continue;
    const CompositeIndexPtr& child_index = child_indexes_[r];
    auto probe = cache->GetOrBuildProbe(child_index, spec.relation(parent));
    if (!probe.ok()) return probe.status();

    ColumnarEdge& edge = columnar_edges_[r];
    edge.parent_probe = std::move(probe).value();
    const auto& w = weights_[r];
    const size_t num_groups = child_index->NumKeys();
    edge.offsets.assign(num_groups + 1, 0);
    edge.rows.reserve(child_index->group_rows().size());
    for (size_t g = 0; g < num_groups; ++g) {
      group_weights.clear();
      for (uint32_t row : child_index->GroupRows(static_cast<uint32_t>(g))) {
        if (w[row] > 0.0) {
          edge.rows.push_back(row);
          group_weights.push_back(w[row]);
        }
      }
      if (!group_weights.empty()) {
        auto begin =
            edge.alias.AppendGroup(group_weights.data(), group_weights.size());
        if (!begin.ok()) return begin.status();
        SUJ_CHECK(begin.value() == edge.offsets[g]);
      }
      edge.offsets[g + 1] = static_cast<uint32_t>(edge.rows.size());
    }
  }
  columnar_ready_ = true;
  return Status::OK();
}

Result<std::unique_ptr<ExactWeightSampler>> ExactWeightSampler::Create(
    JoinSpecPtr join, CompositeIndexCache* cache, Options options) {
  auto weights = ExactWeightIndex::Build(join, cache);
  if (!weights.ok()) return weights.status();
  return Create(std::move(weights).value(), options);
}

Result<std::unique_ptr<ExactWeightSampler>> ExactWeightSampler::Create(
    ExactWeightIndexPtr weights, Options options) {
  if (weights == nullptr) return Status::InvalidArgument("null weight index");
  JoinSpecPtr join = weights->join();
  const bool columnar = options.columnar && weights->columnar_ready();
  auto sampler = std::unique_ptr<ExactWeightSampler>(new ExactWeightSampler(
      std::move(join), std::move(weights), columnar));
  sampler->need_checks_ =
      !sampler->join_->graph().tree_captures_all_constraints();
  return sampler;
}

std::optional<Tuple> ExactWeightSampler::TrySample(Rng& rng) {
  return columnar_ ? TrySampleColumnar(rng) : TrySampleRow(rng);
}

std::optional<Tuple> ExactWeightSampler::Materialize(const uint32_t* chosen,
                                                     size_t stride,
                                                     size_t offset) {
  const JoinSpec& spec = *join_;
  const Schema& out_schema = spec.output_schema();
  std::vector<Value> assignment(out_schema.num_fields());
  for (int r : spec.graph().tree_order()) {
    const Relation& rel = *spec.relation(r);
    const uint32_t row = chosen[static_cast<size_t>(r) * stride + offset];
    for (const auto& [col, out_idx] : weights_->writes(r)) {
      assignment[out_idx] = rel.GetValue(row, col);
    }
    if (need_checks_) {
      for (const auto& [col, out_idx] : weights_->checks(r)) {
        if (!(assignment[out_idx] == rel.GetValue(row, col))) {
          ++stats_.rejections;  // non-tree constraint violated (cyclic join)
          return std::nullopt;
        }
      }
    }
  }
  Tuple out(std::move(assignment));
  if (!spec.SatisfiesPredicates(out)) {
    ++stats_.rejections;
    return std::nullopt;
  }
  ++stats_.successes;
  return out;
}

std::optional<Tuple> ExactWeightSampler::TrySampleColumnar(Rng& rng) {
  ++stats_.attempts;
  if (weights_->TotalWeight() <= 0.0) {
    ++stats_.dead_ends;
    return std::nullopt;
  }
  const JoinGraph& graph = join_->graph();
  const auto& order = graph.tree_order();
  const size_t n = order.size();

  uint32_t chosen[64];
  SUJ_CHECK(n <= 64);
  chosen[order[0]] =
      static_cast<uint32_t>(weights_->root_alias().Sample(rng));
  for (size_t pos = 1; pos < n; ++pos) {
    const int r = order[pos];
    const auto& edge = weights_->columnar_edge(r);
    const uint32_t g =
        (*edge.parent_probe)[chosen[graph.tree_parent()[r]]];
    if (g == CompositeIndex::kNoGroup) {
      ++stats_.dead_ends;
      return std::nullopt;
    }
    const uint32_t begin = edge.offsets[g];
    const uint32_t len = edge.offsets[g + 1] - begin;
    if (len == 0) {
      // All candidate rows carry zero weight (pruned subtree): a dead end,
      // exactly like a zero CDF sum on the row path.
      ++stats_.dead_ends;
      return std::nullopt;
    }
    const size_t local = edge.alias.SampleGroup(begin, len, rng);
    chosen[r] = edge.rows[begin + local];
  }
  return Materialize(chosen, 1, 0);
}

size_t ExactWeightSampler::TrySampleBatch(size_t count, Rng& rng,
                                          std::vector<Tuple>* out) {
  size_t appended = 0;
  if (!columnar_ || count < 2) {
    for (size_t i = 0; i < count; ++i) {
      auto t = TrySample(rng);
      if (t.has_value()) {
        out->push_back(*std::move(t));
        ++appended;
      }
    }
    return appended;
  }

  stats_.attempts += count;
  if (weights_->TotalWeight() <= 0.0) {
    stats_.dead_ends += count;
    return 0;
  }
  const JoinGraph& graph = join_->graph();
  const auto& order = graph.tree_order();
  const size_t n = order.size();

  batch_rows_.assign(n == 0 ? 0 : join_->num_relations() * count, 0);
  batch_begin_.assign(count, 0);
  batch_len_.assign(count, 0);
  batch_alive_.assign(count, 1);

  const AliasTable& root_alias = weights_->root_alias();
  uint32_t* root_rows = batch_rows_.data() +
                        static_cast<size_t>(order[0]) * count;
  for (size_t i = 0; i < count; ++i) {
    root_rows[i] = static_cast<uint32_t>(root_alias.Sample(rng));
  }

  // Level-synchronous descent: finish level p for every in-flight walk
  // before starting level p+1, prefetching each walk's next cache lines a
  // pass ahead so the dependent misses of independent walks overlap.
  for (size_t pos = 1; pos < n; ++pos) {
    const int r = order[pos];
    const auto& edge = weights_->columnar_edge(r);
    const uint32_t* probe = edge.parent_probe->data();
    const uint32_t* offsets = edge.offsets.data();
    const uint32_t* parent_rows =
        batch_rows_.data() +
        static_cast<size_t>(graph.tree_parent()[r]) * count;
    uint32_t* rows_out = batch_rows_.data() + static_cast<size_t>(r) * count;

    // Pass 1: probe the parent rows; prefetch each group's offset pair.
    for (size_t i = 0; i < count; ++i) {
      if (!batch_alive_[i]) continue;
      const uint32_t g = probe[parent_rows[i]];
      if (g == CompositeIndex::kNoGroup) {
        batch_alive_[i] = 0;
        ++stats_.dead_ends;
        continue;
      }
      batch_begin_[i] = g;  // group id until pass 2 resolves the slice
      SUJ_PREFETCH(offsets + g);
    }
    // Pass 2: resolve group slices; prefetch alias and row storage.
    for (size_t i = 0; i < count; ++i) {
      if (!batch_alive_[i]) continue;
      const uint32_t g = batch_begin_[i];
      const uint32_t begin = offsets[g];
      const uint32_t len = offsets[g + 1] - begin;
      if (len == 0) {
        batch_alive_[i] = 0;
        ++stats_.dead_ends;
        continue;
      }
      batch_begin_[i] = begin;
      batch_len_[i] = len;
      SUJ_PREFETCH(edge.alias.prob_data() + begin);
      SUJ_PREFETCH(edge.alias.alias_data() + begin);
      SUJ_PREFETCH(edge.rows.data() + begin);
    }
    // Pass 3: alias draws. RNG is consumed in walk order within the level,
    // only for walks still alive, so the stream is a pure function of the
    // batch's inputs.
    for (size_t i = 0; i < count; ++i) {
      if (!batch_alive_[i]) continue;
      const size_t local =
          edge.alias.SampleGroup(batch_begin_[i], batch_len_[i], rng);
      rows_out[i] = edge.rows[batch_begin_[i] + local];
    }
  }

  for (size_t i = 0; i < count; ++i) {
    if (!batch_alive_[i]) continue;
    auto t = Materialize(batch_rows_.data(), count, i);
    if (t.has_value()) {
      out->push_back(*std::move(t));
      ++appended;
    }
  }
  return appended;
}

std::optional<Tuple> ExactWeightSampler::TrySampleRow(Rng& rng) {
  ++stats_.attempts;
  const JoinGraph& graph = join_->graph();
  const double total = weights_->TotalWeight();
  if (total <= 0.0) {
    ++stats_.dead_ends;
    return std::nullopt;
  }

  // Root draw: binary search the cumulative weight array. The draw lies in
  // [0, total); ResolveCumulativeDraw keeps the floating-point boundary
  // case off zero-weight tail rows.
  int root = graph.tree_order()[0];
  size_t root_row =
      ResolveCumulativeDraw(weights_->root_cumulative(),
                            weights_->weights(root),
                            rng.UniformDouble() * total);
  return DescendRow(static_cast<uint32_t>(root_row), rng);
}

std::optional<Tuple> ExactWeightSampler::TrySampleRowFromRoot(
    uint32_t root_row, Rng& rng) {
  ++stats_.attempts;
  return DescendRow(root_row, rng);
}

std::optional<Tuple> ExactWeightSampler::DescendRow(uint32_t root_row,
                                                    Rng& rng) {
  const JoinSpec& spec = *join_;
  const JoinGraph& graph = spec.graph();
  const Schema& out_schema = spec.output_schema();
  std::vector<Value> assignment(out_schema.num_fields());
  std::vector<bool> assigned(out_schema.num_fields(), false);

  // Applies relation r's chosen row to the assignment; false on conflict
  // with an already-assigned attribute (possible only for cyclic joins).
  auto apply_row = [&](int r, uint32_t row) -> bool {
    const Relation& rel = *spec.relation(r);
    for (size_t c = 0; c < rel.schema().num_fields(); ++c) {
      int out_idx = out_schema.FieldIndex(rel.schema().field(c).name);
      SUJ_DCHECK(out_idx >= 0);
      Value v = rel.GetValue(row, c);
      if (assigned[out_idx]) {
        if (!(assignment[out_idx] == v)) return false;
      } else {
        assignment[out_idx] = std::move(v);
        assigned[out_idx] = true;
      }
    }
    return true;
  };

  const auto& order = graph.tree_order();
  if (!apply_row(order[0], root_row)) {
    ++stats_.rejections;
    return std::nullopt;
  }

  // Descend the tree; parents appear before children in tree_order.
  for (size_t pos = 1; pos < order.size(); ++pos) {
    int r = order[pos];
    const auto& edge_attrs = graph.tree_edge_attrs()[r];
    // Probe key from the current assignment (parent already applied).
    std::vector<Value> key_values;
    key_values.reserve(edge_attrs.size());
    for (const auto& a : edge_attrs) {
      int idx = out_schema.FieldIndex(a);
      SUJ_DCHECK(idx >= 0 && assigned[idx]);
      key_values.push_back(assignment[idx]);
    }
    const RowSpan candidates = weights_->child_index(r)->LookupEncoded(
        Tuple(std::move(key_values)).Encode());
    if (candidates.empty()) {
      // Cannot happen when weights are exact (the parent row would have
      // weight 0); defensively treat as a dead end.
      ++stats_.dead_ends;
      return std::nullopt;
    }
    const auto& w = weights_->weights(r);
    double wsum = 0.0;
    for (uint32_t row : candidates) wsum += w[row];
    if (wsum <= 0.0) {
      ++stats_.dead_ends;
      return std::nullopt;
    }
    double y = rng.UniformDouble() * wsum;
    // The boundary case y >= wsum (rounding) must resolve to a positive-
    // weight candidate, not blindly to the last one.
    uint32_t chosen = candidates.back();
    double acc = 0.0;
    for (uint32_t row : candidates) {
      if (w[row] <= 0.0) continue;
      chosen = row;  // last positive-weight candidate seen (the fallback)
      acc += w[row];
      if (y < acc) break;
    }
    if (!apply_row(r, chosen)) {
      ++stats_.rejections;  // non-tree constraint violated (cyclic join)
      return std::nullopt;
    }
  }

  Tuple out(std::move(assignment));
  if (!spec.SatisfiesPredicates(out)) {
    ++stats_.rejections;
    return std::nullopt;
  }
  ++stats_.successes;
  return out;
}

}  // namespace suj
