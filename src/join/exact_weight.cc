#include "join/exact_weight.h"

#include <algorithm>

#include "common/logging.h"

namespace suj {

namespace {

// Schema column indexes of `attrs` within `rel`.
std::vector<int> ColumnIndexes(const Relation& rel,
                               const std::vector<std::string>& attrs) {
  std::vector<int> cols;
  cols.reserve(attrs.size());
  for (const auto& a : attrs) {
    int idx = rel.schema().FieldIndex(a);
    SUJ_CHECK(idx >= 0);
    cols.push_back(idx);
  }
  return cols;
}

}  // namespace

Result<std::shared_ptr<const ExactWeightIndex>> ExactWeightIndex::Build(
    JoinSpecPtr join, CompositeIndexCache* cache) {
  if (join == nullptr) return Status::InvalidArgument("null join");
  if (cache == nullptr) return Status::InvalidArgument("null index cache");

  auto index = std::shared_ptr<ExactWeightIndex>(
      new ExactWeightIndex(std::move(join)));
  const JoinSpec& spec = *index->join_;
  const JoinGraph& graph = spec.graph();
  const int n = spec.num_relations();

  index->weights_.resize(n);
  index->child_indexes_.resize(n);
  for (int r = 0; r < n; ++r) {
    if (graph.tree_parent()[r] >= 0) {
      auto built =
          cache->GetOrBuild(spec.relation(r), graph.tree_edge_attrs()[r]);
      if (!built.ok()) return built.status();
      index->child_indexes_[r] = std::move(built).value();
    }
  }

  // Children before parents: reverse BFS order of the spanning tree.
  std::vector<int> order = graph.tree_order();
  std::reverse(order.begin(), order.end());
  // agg[r]: encoded tree-edge key of relation r -> sum of weights of r's
  // rows with that key. Consumed by r's parent.
  std::vector<std::unordered_map<std::string, double>> agg(n);

  for (int r : order) {
    const Relation& rel = *spec.relation(r);
    auto& w = index->weights_[r];
    w.assign(rel.num_rows(), 1.0);
    for (int c : graph.tree_children()[r]) {
      const auto& child_agg = agg[c];
      std::vector<int> cols = ColumnIndexes(rel, graph.tree_edge_attrs()[c]);
      for (size_t row = 0; row < rel.num_rows(); ++row) {
        if (w[row] == 0.0) continue;
        auto it = child_agg.find(rel.ProjectRow(row, cols).Encode());
        w[row] *= it == child_agg.end() ? 0.0 : it->second;
      }
    }
    if (graph.tree_parent()[r] >= 0) {
      std::vector<int> cols = ColumnIndexes(rel, graph.tree_edge_attrs()[r]);
      auto& my_agg = agg[r];
      for (size_t row = 0; row < rel.num_rows(); ++row) {
        if (w[row] > 0.0) {
          my_agg[rel.ProjectRow(row, cols).Encode()] += w[row];
        }
      }
    }
  }

  // Root cumulative weights for O(log n) sampling.
  int root = graph.tree_order().empty() ? 0 : graph.tree_order()[0];
  const auto& root_w = index->weights_[root];
  index->root_cumulative_.resize(root_w.size());
  double running = 0.0;
  for (size_t i = 0; i < root_w.size(); ++i) {
    running += root_w[i];
    index->root_cumulative_[i] = running;
  }
  index->total_weight_ = running;
  index->exact_ =
      graph.tree_captures_all_constraints() && !spec.has_predicates();
  return std::shared_ptr<const ExactWeightIndex>(index);
}

Result<std::unique_ptr<ExactWeightSampler>> ExactWeightSampler::Create(
    JoinSpecPtr join, CompositeIndexCache* cache) {
  auto weights = ExactWeightIndex::Build(join, cache);
  if (!weights.ok()) return weights.status();
  return Create(std::move(weights).value());
}

Result<std::unique_ptr<ExactWeightSampler>> ExactWeightSampler::Create(
    ExactWeightIndexPtr weights) {
  if (weights == nullptr) return Status::InvalidArgument("null weight index");
  JoinSpecPtr join = weights->join();
  return std::unique_ptr<ExactWeightSampler>(
      new ExactWeightSampler(std::move(join), std::move(weights)));
}

std::optional<Tuple> ExactWeightSampler::TrySample(Rng& rng) {
  ++stats_.attempts;
  const JoinSpec& spec = *join_;
  const JoinGraph& graph = spec.graph();
  const double total = weights_->TotalWeight();
  if (total <= 0.0) {
    ++stats_.dead_ends;
    return std::nullopt;
  }

  const Schema& out_schema = spec.output_schema();
  std::vector<Value> assignment(out_schema.num_fields());
  std::vector<bool> assigned(out_schema.num_fields(), false);

  // Applies relation r's chosen row to the assignment; false on conflict
  // with an already-assigned attribute (possible only for cyclic joins).
  auto apply_row = [&](int r, uint32_t row) -> bool {
    const Relation& rel = *spec.relation(r);
    for (size_t c = 0; c < rel.schema().num_fields(); ++c) {
      int out_idx = out_schema.FieldIndex(rel.schema().field(c).name);
      SUJ_DCHECK(out_idx >= 0);
      Value v = rel.GetValue(row, c);
      if (assigned[out_idx]) {
        if (!(assignment[out_idx] == v)) return false;
      } else {
        assignment[out_idx] = std::move(v);
        assigned[out_idx] = true;
      }
    }
    return true;
  };

  // Root draw: binary search the cumulative weight array.
  const auto& order = graph.tree_order();
  int root = order[0];
  const auto& cumulative = weights_->root_cumulative();
  double x = rng.UniformDouble() * total;
  size_t root_row =
      std::upper_bound(cumulative.begin(), cumulative.end(), x) -
      cumulative.begin();
  if (root_row >= cumulative.size()) root_row = cumulative.size() - 1;
  if (!apply_row(root, static_cast<uint32_t>(root_row))) {
    ++stats_.rejections;
    return std::nullopt;
  }

  // Descend the tree; parents appear before children in tree_order.
  for (size_t pos = 1; pos < order.size(); ++pos) {
    int r = order[pos];
    const auto& edge_attrs = graph.tree_edge_attrs()[r];
    // Probe key from the current assignment (parent already applied).
    std::vector<Value> key_values;
    key_values.reserve(edge_attrs.size());
    for (const auto& a : edge_attrs) {
      int idx = out_schema.FieldIndex(a);
      SUJ_DCHECK(idx >= 0 && assigned[idx]);
      key_values.push_back(assignment[idx]);
    }
    const auto& candidates = weights_->child_index(r)->LookupEncoded(
        Tuple(std::move(key_values)).Encode());
    if (candidates.empty()) {
      // Cannot happen when weights are exact (the parent row would have
      // weight 0); defensively treat as a dead end.
      ++stats_.dead_ends;
      return std::nullopt;
    }
    const auto& w = weights_->weights(r);
    double wsum = 0.0;
    for (uint32_t row : candidates) wsum += w[row];
    if (wsum <= 0.0) {
      ++stats_.dead_ends;
      return std::nullopt;
    }
    double y = rng.UniformDouble() * wsum;
    uint32_t chosen = candidates.back();
    double acc = 0.0;
    for (uint32_t row : candidates) {
      acc += w[row];
      if (y < acc) {
        chosen = row;
        break;
      }
    }
    if (!apply_row(r, chosen)) {
      ++stats_.rejections;  // non-tree constraint violated (cyclic join)
      return std::nullopt;
    }
  }

  Tuple out(std::move(assignment));
  if (!spec.SatisfiesPredicates(out)) {
    ++stats_.rejections;
    return std::nullopt;
  }
  ++stats_.successes;
  return out;
}

}  // namespace suj
