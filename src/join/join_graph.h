// JoinGraph: structural analysis of a multi-way natural join.
//
// Relations are nodes; a structural edge connects two relations that are
// joined. Edges may be declared explicitly (workloads declare the chain
// supplier-nation-customer-orders-lineitem even though `nationkey` is shared
// by three relations) or inferred as "every pair sharing an attribute".
//
// The analysis produces everything the executors and samplers need:
//  * classification into chain / acyclic / cyclic (§2, §8),
//  * a walk order with per-step bound attributes: at step i, the new
//    relation must match ALL attributes already fixed by steps < i, which is
//    what makes one sampler implementation correct for every join type
//    (cycle-closing equalities become part of the probe key),
//  * a rooted spanning tree for exact-weight DP, plus a flag saying whether
//    the tree implies every shared-attribute equality (if not, exact-weight
//    sampling adds a consistency rejection, per Zhao et al.'s skeleton +
//    residual treatment of cyclic joins).

#ifndef SUJ_JOIN_JOIN_GRAPH_H_
#define SUJ_JOIN_JOIN_GRAPH_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/relation.h"

namespace suj {

/// Join shape (§2): chain, acyclic (tree), or cyclic.
enum class JoinType { kChain, kAcyclic, kCyclic };

const char* JoinTypeName(JoinType type);

/// A declared structural edge between two relations (indexes into the
/// relation list of the join).
struct JoinEdge {
  int left;
  int right;
};

/// \brief Structural analysis result for one join.
class JoinGraph {
 public:
  /// Analyzes `relations`. If `declared_edges` is empty, edges are inferred
  /// as all pairs of relations sharing at least one attribute name.
  /// Fails if the graph is disconnected (the paper only treats connected
  /// joins) or a declared edge joins relations with no shared attribute.
  static Result<JoinGraph> Build(const std::vector<RelationPtr>& relations,
                                 std::vector<JoinEdge> declared_edges = {});

  int num_relations() const { return static_cast<int>(num_relations_); }
  JoinType type() const { return type_; }

  /// Structural edges with their shared attributes.
  struct Edge {
    int left;
    int right;
    std::vector<std::string> attrs;
  };
  const std::vector<Edge>& edges() const { return edges_; }

  /// Relation visit order for walks/executors. walk_order()[0] is the
  /// starting relation; for chains this is one endpoint of the path.
  const std::vector<int>& walk_order() const { return walk_order_; }

  /// bound_attrs()[p]: attributes of relation walk_order()[p] already fixed
  /// by relations at positions < p (empty for p == 0). These are the probe
  /// attributes for step p.
  const std::vector<std::vector<std::string>>& bound_attrs() const {
    return bound_attrs_;
  }

  /// Spanning tree over structural edges, rooted at walk_order()[0]:
  /// tree_parent()[r] is the parent relation of r (-1 for the root).
  const std::vector<int>& tree_parent() const { return tree_parent_; }
  /// Attributes shared between r and its parent (empty for the root).
  const std::vector<std::vector<std::string>>& tree_edge_attrs() const {
    return tree_edge_attrs_;
  }
  /// Children lists of the spanning tree.
  const std::vector<std::vector<int>>& tree_children() const {
    return tree_children_;
  }
  /// Relations in BFS order from the root (parents before children).
  const std::vector<int>& tree_order() const { return tree_order_; }

  /// True iff every shared-attribute equality is implied by the spanning
  /// tree (each attribute's relations form a connected subtree whose edges
  /// all carry the attribute). When false the join behaves cyclically and
  /// tree-based exact weights are only upper bounds.
  bool tree_captures_all_constraints() const {
    return tree_captures_all_constraints_;
  }

 private:
  JoinGraph() = default;

  size_t num_relations_ = 0;
  JoinType type_ = JoinType::kChain;
  std::vector<Edge> edges_;
  std::vector<int> walk_order_;
  std::vector<std::vector<std::string>> bound_attrs_;
  std::vector<int> tree_parent_;
  std::vector<std::vector<std::string>> tree_edge_attrs_;
  std::vector<std::vector<int>> tree_children_;
  std::vector<int> tree_order_;
  bool tree_captures_all_constraints_ = true;
};

}  // namespace suj

#endif  // SUJ_JOIN_JOIN_GRAPH_H_
