// FullJoinExecutor: materializes the complete result of a join.
//
// This is the FullJoinUnion baseline of §9: ground truth for join sizes,
// overlaps, union sizes, and sampler uniformity tests. It is deliberately a
// straightforward left-deep hash-join pipeline -- the thing the paper's
// framework avoids running on large data.

#ifndef SUJ_JOIN_FULL_JOIN_H_
#define SUJ_JOIN_FULL_JOIN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "index/composite_index.h"
#include "join/join_spec.h"

namespace suj {

/// \brief Materialized join output.
struct JoinResult {
  /// Output schema (== JoinSpec::output_schema()).
  Schema schema;
  /// All result tuples. Distinct as long as base relations are
  /// duplicate-free (the paper's standing assumption).
  std::vector<Tuple> tuples;

  size_t size() const { return tuples.size(); }
};

/// \brief Executes full joins, probing via a shared composite-index cache.
class FullJoinExecutor {
 public:
  /// \param cache index cache shared with samplers (may be nullptr to use a
  ///        private cache).
  /// \param max_intermediate_rows guard against runaway intermediate results
  ///        (returns OutOfRange instead of exhausting memory).
  explicit FullJoinExecutor(CompositeIndexCache* cache = nullptr,
                            size_t max_intermediate_rows = 100'000'000);

  /// Runs the join to completion, applying output predicates.
  Result<JoinResult> Execute(const JoinSpecPtr& join);

  /// Runs the join and returns only the result cardinality (still subject
  /// to the intermediate-row guard).
  Result<uint64_t> Count(const JoinSpecPtr& join);

 private:
  CompositeIndexCache* cache_;
  CompositeIndexCache owned_cache_;
  size_t max_intermediate_rows_;
};

}  // namespace suj

#endif  // SUJ_JOIN_FULL_JOIN_H_
