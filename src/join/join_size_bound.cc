#include "join/join_size_bound.h"

#include <algorithm>

namespace suj {

Result<OlkenBoundInfo> ComputeExtendedOlkenBound(const JoinSpecPtr& join,
                                                 CompositeIndexCache* cache) {
  if (join == nullptr) return Status::InvalidArgument("null join");
  if (cache == nullptr) return Status::InvalidArgument("null index cache");
  const JoinGraph& graph = join->graph();
  const auto& order = graph.walk_order();
  const auto& bound_attrs = graph.bound_attrs();

  OlkenBoundInfo info;
  info.step_max_degrees.assign(order.size(), 0);
  info.bound =
      static_cast<double>(join->relation(order[0])->num_rows());
  for (size_t pos = 1; pos < order.size() && info.bound > 0; ++pos) {
    auto index = cache->GetOrBuild(join->relation(order[pos]),
                                   bound_attrs[pos]);
    if (!index.ok()) return index.status();
    size_t m = (*index)->MaxDegree();
    info.step_max_degrees[pos] = m;
    info.bound *= static_cast<double>(m);
  }
  return info;
}

Result<OlkenBoundInfo> ComputeOlkenBoundFromHistograms(
    const JoinSpecPtr& join, HistogramCatalog* histograms) {
  if (join == nullptr) return Status::InvalidArgument("null join");
  if (histograms == nullptr) {
    return Status::InvalidArgument("null histogram catalog");
  }
  const JoinGraph& graph = join->graph();
  const auto& order = graph.walk_order();
  const auto& bound_attrs = graph.bound_attrs();

  OlkenBoundInfo info;
  info.step_max_degrees.assign(order.size(), 0);
  info.bound = static_cast<double>(join->relation(order[0])->num_rows());
  for (size_t pos = 1; pos < order.size() && info.bound > 0; ++pos) {
    const RelationPtr& rel = join->relation(order[pos]);
    // A probe on several attributes matches at most the minimum of the
    // per-attribute max degrees.
    size_t m = 0;
    bool first = true;
    for (const auto& attr : bound_attrs[pos]) {
      auto hist = histograms->GetOrBuild(rel, attr);
      if (!hist.ok()) return hist.status();
      size_t attr_max = (*hist)->MaxDegree();
      m = first ? attr_max : std::min(m, attr_max);
      first = false;
    }
    info.step_max_degrees[pos] = m;
    info.bound *= static_cast<double>(m);
  }
  return info;
}

}  // namespace suj
