// HashIndex: value -> row-id index on one attribute of a relation.
//
// This is the structure the paper assumes in §3.2 ("we use hash tables for
// relations to maintain tuples' joinability information"). It serves three
// roles: (1) hash-join probes in the full-join baseline, (2) degree lookups
// d_A(v, R) for random walks and Olken-style accept/reject, and (3) degree
// statistics (max/avg degree) for the histogram-based estimators.

#ifndef SUJ_INDEX_HASH_INDEX_H_
#define SUJ_INDEX_HASH_INDEX_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/relation.h"

namespace suj {

/// \brief Index over a single attribute of a relation.
class HashIndex {
 public:
  /// Builds an index on `attribute` of `relation`. Fails if the attribute
  /// does not exist.
  static Result<std::shared_ptr<const HashIndex>> Build(
      RelationPtr relation, const std::string& attribute);

  const std::string& attribute() const { return attribute_; }
  const RelationPtr& relation() const { return relation_; }

  /// Row ids whose attribute equals `v` (empty vector if none).
  const std::vector<uint32_t>& Lookup(const Value& v) const;

  /// Degree d_A(v, R): number of rows with attribute value `v`.
  size_t Degree(const Value& v) const { return Lookup(v).size(); }

  /// Maximum degree M_A(R) over all values (0 for an empty relation).
  size_t MaxDegree() const { return max_degree_; }

  /// Average degree: num_rows / num_distinct (0 for an empty relation).
  double AvgDegree() const;

  /// Number of distinct attribute values.
  size_t NumDistinct() const { return map_.size(); }

  /// Iteration over (value, rows) groups, for estimator setup scans.
  const std::unordered_map<Value, std::vector<uint32_t>, ValueHash>& groups()
      const {
    return map_;
  }

 private:
  HashIndex(RelationPtr relation, std::string attribute)
      : relation_(std::move(relation)), attribute_(std::move(attribute)) {}

  RelationPtr relation_;
  std::string attribute_;
  std::unordered_map<Value, std::vector<uint32_t>, ValueHash> map_;
  size_t max_degree_ = 0;
  static const std::vector<uint32_t> kEmpty;
};

using HashIndexPtr = std::shared_ptr<const HashIndex>;

/// \brief Cache of per-(relation, attribute) indexes.
///
/// Join samplers and estimators request the same indexes repeatedly; the
/// cache builds each once. Keyed by relation pointer identity + attribute.
class IndexCache {
 public:
  /// Returns the index for (relation, attribute), building it on first use.
  Result<HashIndexPtr> GetOrBuild(const RelationPtr& relation,
                                  const std::string& attribute);

  size_t size() const { return cache_.size(); }

 private:
  std::unordered_map<std::string, HashIndexPtr> cache_;
};

}  // namespace suj

#endif  // SUJ_INDEX_HASH_INDEX_H_
