#include "index/composite_index.h"

#include <algorithm>
#include <cstdio>

#include "storage/key_codec.h"

namespace suj {

Result<std::shared_ptr<const CompositeIndex>> CompositeIndex::Build(
    RelationPtr relation, std::vector<std::string> attributes) {
  if (relation == nullptr) {
    return Status::InvalidArgument("null relation");
  }
  if (attributes.empty()) {
    return Status::InvalidArgument("composite index needs >= 1 attribute");
  }
  std::vector<int> cols;
  cols.reserve(attributes.size());
  for (const auto& a : attributes) {
    int idx = relation->schema().FieldIndex(a);
    if (idx < 0) {
      return Status::NotFound("relation '" + relation->name() +
                              "' has no attribute '" + a + "'");
    }
    cols.push_back(idx);
  }
  auto index = std::shared_ptr<CompositeIndex>(
      new CompositeIndex(std::move(relation), std::move(attributes)));
  const Relation& rel = *index->relation_;
  const size_t num_rows = rel.num_rows();
  index->group_of_.reserve(num_rows);

  // Pass 1: assign dense group ids in first-row order and count degrees.
  std::vector<uint32_t> row_group(num_rows);
  std::vector<uint32_t> degree;
  std::string scratch;
  for (size_t row = 0; row < num_rows; ++row) {
    EncodeRowKey(rel, cols, row, &scratch);
    auto [it, inserted] = index->group_of_.emplace(
        scratch, static_cast<uint32_t>(degree.size()));
    if (inserted) degree.push_back(0);
    row_group[row] = it->second;
    ++degree[it->second];
  }
  // Pass 2: exclusive prefix sum, then scatter rows into CSR slots.
  const size_t num_groups = degree.size();
  index->group_offsets_.assign(num_groups + 1, 0);
  for (size_t g = 0; g < num_groups; ++g) {
    index->group_offsets_[g + 1] = index->group_offsets_[g] + degree[g];
    if (degree[g] > index->max_degree_) index->max_degree_ = degree[g];
  }
  index->group_rows_.resize(num_rows);
  std::vector<uint32_t> cursor(index->group_offsets_.begin(),
                               index->group_offsets_.end() - 1);
  for (size_t row = 0; row < num_rows; ++row) {
    index->group_rows_[cursor[row_group[row]]++] =
        static_cast<uint32_t>(row);
  }
  return std::shared_ptr<const CompositeIndex>(index);
}

Result<std::shared_ptr<const CompositeIndex>> CompositeIndex::BuildIncremental(
    const CompositeIndex& prev, RelationPtr next,
    const std::vector<uint32_t>& remap, uint32_t first_appended_row) {
  if (next == nullptr) return Status::InvalidArgument("null relation");
  if (remap.size() != prev.relation_->num_rows()) {
    return Status::InvalidArgument("remap size does not match previous rows");
  }
  if (first_appended_row > next->num_rows()) {
    return Status::InvalidArgument("first_appended_row out of range");
  }
  std::vector<int> cols;
  cols.reserve(prev.attributes_.size());
  for (const auto& a : prev.attributes_) {
    int idx = next->schema().FieldIndex(a);
    if (idx < 0) {
      return Status::NotFound("relation '" + next->name() +
                              "' has no attribute '" + a + "'");
    }
    cols.push_back(idx);
  }
  auto index = std::shared_ptr<CompositeIndex>(
      new CompositeIndex(std::move(next), prev.attributes_));
  const Relation& rel = *index->relation_;
  const size_t num_rows = rel.num_rows();

  // Pass 1a: carry surviving rows through the remap. Group ids stay stable
  // (emptied groups keep their id with degree 0), so no row is re-encoded.
  index->group_of_ = prev.group_of_;
  std::vector<uint32_t> row_group(num_rows, kNoGroup);
  std::vector<uint32_t> degree(prev.NumKeys(), 0);
  const size_t prev_groups = prev.NumKeys();
  for (size_t g = 0; g < prev_groups; ++g) {
    for (uint32_t old_row : prev.GroupRows(static_cast<uint32_t>(g))) {
      uint32_t new_row = remap[old_row];
      if (new_row == UINT32_MAX) continue;  // deleted
      if (new_row >= first_appended_row) {
        return Status::InvalidArgument("remap target lands in appended range");
      }
      row_group[new_row] = static_cast<uint32_t>(g);
      ++degree[g];
    }
  }
  // Pass 1b: encode ONLY the appended rows (the incremental part).
  std::string scratch;
  for (size_t row = first_appended_row; row < num_rows; ++row) {
    EncodeRowKey(rel, cols, row, &scratch);
    auto [it, inserted] = index->group_of_.emplace(
        scratch, static_cast<uint32_t>(degree.size()));
    if (inserted) degree.push_back(0);
    row_group[row] = it->second;
    ++degree[it->second];
  }
  for (size_t row = 0; row < first_appended_row; ++row) {
    if (row_group[row] == kNoGroup) {
      return Status::InvalidArgument("remap does not cover surviving row " +
                                     std::to_string(row));
    }
  }
  // Pass 2: identical to the cold build — prefix sum, then scatter in
  // ascending NEW row order, so per-group row order matches a cold Build.
  const size_t num_groups = degree.size();
  index->group_offsets_.assign(num_groups + 1, 0);
  for (size_t g = 0; g < num_groups; ++g) {
    index->group_offsets_[g + 1] = index->group_offsets_[g] + degree[g];
    if (degree[g] > index->max_degree_) index->max_degree_ = degree[g];
  }
  index->group_rows_.resize(num_rows);
  std::vector<uint32_t> cursor(index->group_offsets_.begin(),
                               index->group_offsets_.end() - 1);
  for (size_t row = 0; row < num_rows; ++row) {
    index->group_rows_[cursor[row_group[row]]++] = static_cast<uint32_t>(row);
  }
  return std::shared_ptr<const CompositeIndex>(index);
}

Result<std::vector<uint32_t>> CompositeIndex::MapRows(
    const Relation& probe) const {
  std::vector<int> cols;
  cols.reserve(attributes_.size());
  for (const auto& a : attributes_) {
    int idx = probe.schema().FieldIndex(a);
    if (idx < 0) {
      return Status::NotFound("probe relation '" + probe.name() +
                              "' has no attribute '" + a + "'");
    }
    if (probe.schema().field(static_cast<size_t>(idx)).type !=
        relation_->schema()
            .field(static_cast<size_t>(
                relation_->schema().FieldIndex(a)))
            .type) {
      return Status::InvalidArgument("probe attribute '" + a +
                                     "' type differs from indexed column");
    }
    cols.push_back(idx);
  }
  std::vector<uint32_t> out(probe.num_rows());
  std::string scratch;
  for (size_t row = 0; row < probe.num_rows(); ++row) {
    out[row] = GroupOfEncoded(EncodeRowKey(probe, cols, row, &scratch));
  }
  return out;
}

Result<std::vector<uint32_t>> CompositeIndex::MapRowsIncremental(
    const std::vector<uint32_t>& prev, const std::vector<uint32_t>* probe_remap,
    uint32_t first_appended_row, const Relation& probe,
    bool index_gained_rows) const {
  if (first_appended_row > probe.num_rows()) {
    return Status::InvalidArgument("first_appended_row out of range");
  }
  std::vector<int> cols;
  cols.reserve(attributes_.size());
  for (const auto& a : attributes_) {
    int idx = probe.schema().FieldIndex(a);
    if (idx < 0) {
      return Status::NotFound("probe relation '" + probe.name() +
                              "' has no attribute '" + a + "'");
    }
    cols.push_back(idx);
  }
  std::vector<uint32_t> out(probe.num_rows(), kNoGroup);
  if (probe_remap != nullptr) {
    if (probe_remap->size() != prev.size()) {
      return Status::InvalidArgument("probe remap size mismatch");
    }
    for (size_t old_row = 0; old_row < prev.size(); ++old_row) {
      uint32_t new_row = (*probe_remap)[old_row];
      if (new_row == UINT32_MAX) continue;  // deleted probe row
      out[new_row] = prev[old_row];
    }
  } else {
    if (prev.size() != first_appended_row) {
      return Status::InvalidArgument("probe array size mismatch");
    }
    std::copy(prev.begin(), prev.end(), out.begin());
  }
  std::string scratch;
  for (size_t row = first_appended_row; row < probe.num_rows(); ++row) {
    out[row] = GroupOfEncoded(EncodeRowKey(probe, cols, row, &scratch));
  }
  if (index_gained_rows) {
    // An appended indexed row may have created a key that previously had no
    // group — dangling probe rows must be re-probed against the new index.
    for (size_t row = 0; row < first_appended_row; ++row) {
      if (out[row] == kNoGroup) {
        out[row] = GroupOfEncoded(EncodeRowKey(probe, cols, row, &scratch));
      }
    }
  }
  return out;
}

double CompositeIndex::AvgDegree() const {
  if (group_of_.empty()) return 0.0;
  return static_cast<double>(relation_->num_rows()) /
         static_cast<double>(group_of_.size());
}

namespace {

std::string CacheKey(const void* a, const void* b,
                     const std::vector<std::string>& attributes) {
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "%p/%p", a, b);
  std::string key = prefix;
  for (const auto& attr : attributes) {
    key += '/';
    key += attr;
  }
  return key;
}

}  // namespace

Result<CompositeIndexPtr> CompositeIndexCache::GetOrBuild(
    const RelationPtr& relation, const std::vector<std::string>& attributes) {
  std::string key = CacheKey(relation.get(), nullptr, attributes);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  auto built = CompositeIndex::Build(relation, attributes);
  if (!built.ok()) return built.status();
  cache_.emplace(std::move(key), built.value());
  return std::move(built).value();
}

Result<ProbeArrayPtr> CompositeIndexCache::GetOrBuildProbe(
    const CompositeIndexPtr& index, const RelationPtr& probe) {
  if (index == nullptr || probe == nullptr) {
    return Status::InvalidArgument("null index or probe relation");
  }
  std::string key = CacheKey(index.get(), probe.get(), index->attributes());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = probe_cache_.find(key);
  if (it != probe_cache_.end()) return it->second.rows;
  auto mapped = index->MapRows(*probe);
  if (!mapped.ok()) return mapped.status();
  auto owned = std::make_shared<const std::vector<uint32_t>>(
      std::move(mapped).value());
  probe_cache_.emplace(std::move(key), ProbeSnapshot{index, probe, owned});
  return owned;
}

void CompositeIndexCache::Insert(const CompositeIndexPtr& index) {
  if (index == nullptr) return;
  std::string key =
      CacheKey(index->relation().get(), nullptr, index->attributes());
  std::lock_guard<std::mutex> lock(mu_);
  cache_.emplace(std::move(key), index);
}

void CompositeIndexCache::InsertProbe(const CompositeIndexPtr& index,
                                      const RelationPtr& probe,
                                      ProbeArrayPtr rows) {
  if (index == nullptr || probe == nullptr || rows == nullptr) return;
  std::string key = CacheKey(index.get(), probe.get(), index->attributes());
  std::lock_guard<std::mutex> lock(mu_);
  probe_cache_.emplace(std::move(key),
                       ProbeSnapshot{index, probe, std::move(rows)});
}

std::vector<CompositeIndexPtr> CompositeIndexCache::Indexes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CompositeIndexPtr> out;
  out.reserve(cache_.size());
  for (const auto& [key, index] : cache_) out.push_back(index);
  return out;
}

std::vector<CompositeIndexCache::ProbeSnapshot> CompositeIndexCache::Probes()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ProbeSnapshot> out;
  out.reserve(probe_cache_.size());
  for (const auto& [key, entry] : probe_cache_) out.push_back(entry);
  return out;
}

}  // namespace suj
