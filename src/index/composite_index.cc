#include "index/composite_index.h"

#include <cstdio>

#include "storage/key_codec.h"

namespace suj {

Result<std::shared_ptr<const CompositeIndex>> CompositeIndex::Build(
    RelationPtr relation, std::vector<std::string> attributes) {
  if (relation == nullptr) {
    return Status::InvalidArgument("null relation");
  }
  if (attributes.empty()) {
    return Status::InvalidArgument("composite index needs >= 1 attribute");
  }
  std::vector<int> cols;
  cols.reserve(attributes.size());
  for (const auto& a : attributes) {
    int idx = relation->schema().FieldIndex(a);
    if (idx < 0) {
      return Status::NotFound("relation '" + relation->name() +
                              "' has no attribute '" + a + "'");
    }
    cols.push_back(idx);
  }
  auto index = std::shared_ptr<CompositeIndex>(
      new CompositeIndex(std::move(relation), std::move(attributes)));
  const Relation& rel = *index->relation_;
  const size_t num_rows = rel.num_rows();
  index->group_of_.reserve(num_rows);

  // Pass 1: assign dense group ids in first-row order and count degrees.
  std::vector<uint32_t> row_group(num_rows);
  std::vector<uint32_t> degree;
  std::string scratch;
  for (size_t row = 0; row < num_rows; ++row) {
    EncodeRowKey(rel, cols, row, &scratch);
    auto [it, inserted] = index->group_of_.emplace(
        scratch, static_cast<uint32_t>(degree.size()));
    if (inserted) degree.push_back(0);
    row_group[row] = it->second;
    ++degree[it->second];
  }
  // Pass 2: exclusive prefix sum, then scatter rows into CSR slots.
  const size_t num_groups = degree.size();
  index->group_offsets_.assign(num_groups + 1, 0);
  for (size_t g = 0; g < num_groups; ++g) {
    index->group_offsets_[g + 1] = index->group_offsets_[g] + degree[g];
    if (degree[g] > index->max_degree_) index->max_degree_ = degree[g];
  }
  index->group_rows_.resize(num_rows);
  std::vector<uint32_t> cursor(index->group_offsets_.begin(),
                               index->group_offsets_.end() - 1);
  for (size_t row = 0; row < num_rows; ++row) {
    index->group_rows_[cursor[row_group[row]]++] =
        static_cast<uint32_t>(row);
  }
  return std::shared_ptr<const CompositeIndex>(index);
}

Result<std::vector<uint32_t>> CompositeIndex::MapRows(
    const Relation& probe) const {
  std::vector<int> cols;
  cols.reserve(attributes_.size());
  for (const auto& a : attributes_) {
    int idx = probe.schema().FieldIndex(a);
    if (idx < 0) {
      return Status::NotFound("probe relation '" + probe.name() +
                              "' has no attribute '" + a + "'");
    }
    if (probe.schema().field(static_cast<size_t>(idx)).type !=
        relation_->schema()
            .field(static_cast<size_t>(
                relation_->schema().FieldIndex(a)))
            .type) {
      return Status::InvalidArgument("probe attribute '" + a +
                                     "' type differs from indexed column");
    }
    cols.push_back(idx);
  }
  std::vector<uint32_t> out(probe.num_rows());
  std::string scratch;
  for (size_t row = 0; row < probe.num_rows(); ++row) {
    out[row] = GroupOfEncoded(EncodeRowKey(probe, cols, row, &scratch));
  }
  return out;
}

double CompositeIndex::AvgDegree() const {
  if (group_of_.empty()) return 0.0;
  return static_cast<double>(relation_->num_rows()) /
         static_cast<double>(group_of_.size());
}

namespace {

std::string CacheKey(const void* a, const void* b,
                     const std::vector<std::string>& attributes) {
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "%p/%p", a, b);
  std::string key = prefix;
  for (const auto& attr : attributes) {
    key += '/';
    key += attr;
  }
  return key;
}

}  // namespace

Result<CompositeIndexPtr> CompositeIndexCache::GetOrBuild(
    const RelationPtr& relation, const std::vector<std::string>& attributes) {
  std::string key = CacheKey(relation.get(), nullptr, attributes);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  auto built = CompositeIndex::Build(relation, attributes);
  if (!built.ok()) return built.status();
  cache_.emplace(std::move(key), built.value());
  return std::move(built).value();
}

Result<ProbeArrayPtr> CompositeIndexCache::GetOrBuildProbe(
    const CompositeIndexPtr& index, const RelationPtr& probe) {
  if (index == nullptr || probe == nullptr) {
    return Status::InvalidArgument("null index or probe relation");
  }
  std::string key = CacheKey(index.get(), probe.get(), index->attributes());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = probe_cache_.find(key);
  if (it != probe_cache_.end()) return it->second;
  auto mapped = index->MapRows(*probe);
  if (!mapped.ok()) return mapped.status();
  auto owned = std::make_shared<const std::vector<uint32_t>>(
      std::move(mapped).value());
  probe_cache_.emplace(std::move(key), owned);
  return owned;
}

}  // namespace suj
