#include "index/composite_index.h"

#include <cstdio>

namespace suj {

const std::vector<uint32_t> CompositeIndex::kEmpty;

Result<std::shared_ptr<const CompositeIndex>> CompositeIndex::Build(
    RelationPtr relation, std::vector<std::string> attributes) {
  if (relation == nullptr) {
    return Status::InvalidArgument("null relation");
  }
  if (attributes.empty()) {
    return Status::InvalidArgument("composite index needs >= 1 attribute");
  }
  std::vector<int> cols;
  cols.reserve(attributes.size());
  for (const auto& a : attributes) {
    int idx = relation->schema().FieldIndex(a);
    if (idx < 0) {
      return Status::NotFound("relation '" + relation->name() +
                              "' has no attribute '" + a + "'");
    }
    cols.push_back(idx);
  }
  auto index = std::shared_ptr<CompositeIndex>(
      new CompositeIndex(std::move(relation), std::move(attributes)));
  const Relation& rel = *index->relation_;
  index->map_.reserve(rel.num_rows());
  for (size_t row = 0; row < rel.num_rows(); ++row) {
    auto& rows = index->map_[rel.ProjectRow(row, cols).Encode()];
    rows.push_back(static_cast<uint32_t>(row));
    if (rows.size() > index->max_degree_) index->max_degree_ = rows.size();
  }
  return std::shared_ptr<const CompositeIndex>(index);
}

const std::vector<uint32_t>& CompositeIndex::LookupEncoded(
    const std::string& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? kEmpty : it->second;
}

double CompositeIndex::AvgDegree() const {
  if (map_.empty()) return 0.0;
  return static_cast<double>(relation_->num_rows()) /
         static_cast<double>(map_.size());
}

Result<CompositeIndexPtr> CompositeIndexCache::GetOrBuild(
    const RelationPtr& relation, const std::vector<std::string>& attributes) {
  char prefix[32];
  std::snprintf(prefix, sizeof(prefix), "%p",
                static_cast<const void*>(relation.get()));
  std::string key = prefix;
  for (const auto& a : attributes) {
    key += '/';
    key += a;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  auto built = CompositeIndex::Build(relation, attributes);
  if (!built.ok()) return built.status();
  cache_.emplace(std::move(key), built.value());
  return std::move(built).value();
}

}  // namespace suj
