// CompositeIndex: multi-attribute value -> row-id index.
//
// Join samplers walk relations in an order where each step must match ALL
// attributes already bound by earlier relations (one attribute for chain
// joins, several when a cycle closes, e.g. the (A,C) probe into T for the
// triangle R(A,B) x S(B,C) x T(A,C)). The composite index keys rows by the
// canonical encoding of their projection onto those attributes, which makes
// cyclic joins fall out of the same machinery as chains: the cycle-closing
// equality is simply part of the probe key.

#ifndef SUJ_INDEX_COMPOSITE_INDEX_H_
#define SUJ_INDEX_COMPOSITE_INDEX_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/relation.h"

namespace suj {

/// \brief Index of a relation keyed by a tuple of attribute values.
class CompositeIndex {
 public:
  /// Builds the index over `attributes` (must be non-empty and exist in the
  /// relation; their order defines the probe-key order).
  static Result<std::shared_ptr<const CompositeIndex>> Build(
      RelationPtr relation, std::vector<std::string> attributes);

  const std::vector<std::string>& attributes() const { return attributes_; }
  const RelationPtr& relation() const { return relation_; }

  /// Row ids matching the key tuple (values in attribute order).
  const std::vector<uint32_t>& Lookup(const Tuple& key) const {
    return LookupEncoded(key.Encode());
  }

  /// Row ids matching an already-encoded key.
  const std::vector<uint32_t>& LookupEncoded(const std::string& key) const;

  /// Degree of a key: |Lookup(key)|.
  size_t Degree(const Tuple& key) const { return Lookup(key).size(); }

  /// Maximum degree over all keys present (0 for empty relation). This is
  /// the M term of the extended Olken bound for this join step.
  size_t MaxDegree() const { return max_degree_; }

  /// Average degree over distinct keys (0 for empty relation).
  double AvgDegree() const;

  size_t NumKeys() const { return map_.size(); }

 private:
  CompositeIndex(RelationPtr relation, std::vector<std::string> attributes)
      : relation_(std::move(relation)), attributes_(std::move(attributes)) {}

  RelationPtr relation_;
  std::vector<std::string> attributes_;
  std::unordered_map<std::string, std::vector<uint32_t>> map_;
  size_t max_degree_ = 0;
  static const std::vector<uint32_t> kEmpty;
};

using CompositeIndexPtr = std::shared_ptr<const CompositeIndex>;

/// \brief Cache of composite indexes keyed by (relation identity, attrs).
///
/// Thread-safe: GetOrBuild may be called concurrently (the service layer
/// shares one cache across sessions). The map lookup/insert is serialized
/// by a mutex; the indexes handed out are immutable, so readers need no
/// further synchronization. A miss builds the index while holding the
/// lock — concurrent first-touch of the same (relation, attrs) pays one
/// build, never two.
class CompositeIndexCache {
 public:
  CompositeIndexCache() = default;
  /// Movable so fixtures/workloads can return caches by value. Moving is
  /// NOT a concurrent operation: the source must have no other users
  /// (the usual rule for moved-from objects), only the map transfers and
  /// the destination starts with a fresh mutex.
  CompositeIndexCache(CompositeIndexCache&& other) noexcept
      : cache_(std::move(other.cache_)) {}
  CompositeIndexCache& operator=(CompositeIndexCache&& other) noexcept {
    if (this != &other) cache_ = std::move(other.cache_);
    return *this;
  }

  Result<CompositeIndexPtr> GetOrBuild(
      const RelationPtr& relation, const std::vector<std::string>& attributes);

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, CompositeIndexPtr> cache_;
};

}  // namespace suj

#endif  // SUJ_INDEX_COMPOSITE_INDEX_H_
