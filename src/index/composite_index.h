// CompositeIndex: multi-attribute value -> row-id index.
//
// Join samplers walk relations in an order where each step must match ALL
// attributes already bound by earlier relations (one attribute for chain
// joins, several when a cycle closes, e.g. the (A,C) probe into T for the
// triangle R(A,B) x S(B,C) x T(A,C)). The composite index keys rows by the
// canonical encoding of their projection onto those attributes, which makes
// cyclic joins fall out of the same machinery as chains: the cycle-closing
// equality is simply part of the probe key.
//
// Storage is columnar: each distinct key gets a dense group id, and all row
// ids live in one contiguous CSR array (`group_offsets_` / `group_rows_`)
// sliced per group. The hash map is consulted once per *encoded* key; hot
// walk loops avoid even that by precomputing probe arrays (MapRows) that
// translate a source relation's row id straight to a group id, so the inner
// loop reads two flat integer arrays instead of encoding tuples and hashing
// strings.

#ifndef SUJ_INDEX_COMPOSITE_INDEX_H_
#define SUJ_INDEX_COMPOSITE_INDEX_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/relation.h"

namespace suj {

/// \brief Non-owning view of the row ids matching one key (a CSR slice).
class RowSpan {
 public:
  RowSpan() = default;
  RowSpan(const uint32_t* data, size_t size) : data_(data), size_(size) {}

  const uint32_t* begin() const { return data_; }
  const uint32_t* end() const { return data_ + size_; }
  const uint32_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t operator[](size_t i) const { return data_[i]; }
  uint32_t front() const { return data_[0]; }
  uint32_t back() const { return data_[size_ - 1]; }

 private:
  const uint32_t* data_ = nullptr;
  size_t size_ = 0;
};

/// \brief Index of a relation keyed by a tuple of attribute values.
class CompositeIndex {
 public:
  /// Group id returned for keys with no matching rows.
  static constexpr uint32_t kNoGroup = UINT32_MAX;

  /// Builds the index over `attributes` (must be non-empty and exist in the
  /// relation; their order defines the probe-key order).
  static Result<std::shared_ptr<const CompositeIndex>> Build(
      RelationPtr relation, std::vector<std::string> attributes);

  /// Builds the index over `next` — the fold of `prev`'s relation under a
  /// RelationDelta — without re-encoding surviving rows: they are carried
  /// through `remap` (old row -> new row, UINT32_MAX when deleted), and only
  /// rows >= `first_appended_row` of `next` are encoded and hashed. Group
  /// ids are STABLE across the fold (groups emptied by deletes are retained
  /// with zero rows; appended keys get fresh ids). Group numbering is pure
  /// indirection — per-group row content and order match a cold Build over
  /// `next` exactly, so sampling through the result is byte-identical.
  static Result<std::shared_ptr<const CompositeIndex>> BuildIncremental(
      const CompositeIndex& prev, RelationPtr next,
      const std::vector<uint32_t>& remap, uint32_t first_appended_row);

  const std::vector<std::string>& attributes() const { return attributes_; }
  const RelationPtr& relation() const { return relation_; }

  /// Row ids matching the key tuple (values in attribute order).
  RowSpan Lookup(const Tuple& key) const { return LookupEncoded(key.Encode()); }

  /// Row ids matching an already-encoded key.
  RowSpan LookupEncoded(const std::string& key) const {
    return GroupRows(GroupOfEncoded(key));
  }

  /// Dense id of the group matching an encoded key, or kNoGroup.
  uint32_t GroupOfEncoded(const std::string& key) const {
    auto it = group_of_.find(key);
    return it == group_of_.end() ? kNoGroup : it->second;
  }

  /// Row ids of group `g` (empty span for kNoGroup).
  RowSpan GroupRows(uint32_t g) const {
    if (g == kNoGroup) return RowSpan();
    return RowSpan(group_rows_.data() + group_offsets_[g],
                   group_offsets_[g + 1] - group_offsets_[g]);
  }

  /// Raw CSR arrays for prefetch-friendly walk loops. `group_offsets()` has
  /// NumKeys()+1 entries; group g's rows are
  /// group_rows()[group_offsets()[g] .. group_offsets()[g+1]).
  const std::vector<uint32_t>& group_offsets() const { return group_offsets_; }
  const std::vector<uint32_t>& group_rows() const { return group_rows_; }

  /// For every row of `probe`, the group id its projection onto this
  /// index's attributes maps to (kNoGroup for dangling rows). `probe` must
  /// contain all indexed attributes with matching types. The result is the
  /// probe array that lets walk loops skip key encoding entirely.
  Result<std::vector<uint32_t>> MapRows(const Relation& probe) const;

  /// Carries a probe array across a data-epoch fold. `this` must be the
  /// NEW index (cold or BuildIncremental — group ids stable either way via
  /// the latter). `prev` is the old probe array; `probe_remap` remaps old
  /// probe rows (null when the probe relation is unchanged), and probe rows
  /// >= `first_appended_row` are encoded from scratch. When the indexed
  /// side gained rows (`index_gained_rows`), surviving probe rows that
  /// previously hit kNoGroup are re-probed — an appended indexed row may
  /// have created the key they were missing.
  Result<std::vector<uint32_t>> MapRowsIncremental(
      const std::vector<uint32_t>& prev,
      const std::vector<uint32_t>* probe_remap, uint32_t first_appended_row,
      const Relation& probe, bool index_gained_rows) const;

  /// Degree of a key: |Lookup(key)|.
  size_t Degree(const Tuple& key) const { return Lookup(key).size(); }

  /// Maximum degree over all keys present (0 for empty relation). This is
  /// the M term of the extended Olken bound for this join step.
  size_t MaxDegree() const { return max_degree_; }

  /// Average degree over distinct keys (0 for empty relation).
  double AvgDegree() const;

  size_t NumKeys() const { return group_of_.size(); }

 private:
  CompositeIndex(RelationPtr relation, std::vector<std::string> attributes)
      : relation_(std::move(relation)), attributes_(std::move(attributes)) {}

  RelationPtr relation_;
  std::vector<std::string> attributes_;
  // Encoded key -> dense group id, assigned in first-row order.
  std::unordered_map<std::string, uint32_t> group_of_;
  std::vector<uint32_t> group_offsets_;  // NumKeys()+1 entries
  std::vector<uint32_t> group_rows_;     // row ids, grouped by key
  size_t max_degree_ = 0;
};

using CompositeIndexPtr = std::shared_ptr<const CompositeIndex>;
using ProbeArrayPtr = std::shared_ptr<const std::vector<uint32_t>>;

/// \brief Cache of composite indexes keyed by (relation identity, attrs).
///
/// Thread-safe: GetOrBuild may be called concurrently (the service layer
/// shares one cache across sessions). The map lookup/insert is serialized
/// by a mutex; the indexes handed out are immutable, so readers need no
/// further synchronization. A miss builds the index while holding the
/// lock — concurrent first-touch of the same (relation, attrs) pays one
/// build, never two.
class CompositeIndexCache {
 public:
  CompositeIndexCache() = default;
  /// Movable so fixtures/workloads can return caches by value. Moving is
  /// NOT a concurrent operation: the source must have no other users
  /// (the usual rule for moved-from objects), only the maps transfer and
  /// the destination starts with a fresh mutex.
  CompositeIndexCache(CompositeIndexCache&& other) noexcept
      : cache_(std::move(other.cache_)),
        probe_cache_(std::move(other.probe_cache_)) {}
  CompositeIndexCache& operator=(CompositeIndexCache&& other) noexcept {
    if (this != &other) {
      cache_ = std::move(other.cache_);
      probe_cache_ = std::move(other.probe_cache_);
    }
    return *this;
  }

  Result<CompositeIndexPtr> GetOrBuild(
      const RelationPtr& relation, const std::vector<std::string>& attributes);

  /// Cached `index->MapRows(*probe)`. Samplers are rebuilt per session but
  /// probe arrays depend only on (index, probe relation), so caching keeps
  /// session creation O(1) after the first build — the same contract
  /// GetOrBuild provides for the indexes themselves.
  Result<ProbeArrayPtr> GetOrBuildProbe(const CompositeIndexPtr& index,
                                        const RelationPtr& probe);

  /// Inserts a prebuilt index (e.g. from BuildIncremental) so later
  /// GetOrBuild calls for (index->relation(), index->attributes()) hit.
  /// No-op if an entry already exists.
  void Insert(const CompositeIndexPtr& index);

  /// Inserts a precomputed probe array for (index, probe). No-op if cached.
  void InsertProbe(const CompositeIndexPtr& index, const RelationPtr& probe,
                   ProbeArrayPtr rows);

  /// \brief Enumeration snapshot of one cached probe array (epoch seeding).
  struct ProbeSnapshot {
    CompositeIndexPtr index;
    RelationPtr probe;
    ProbeArrayPtr rows;
  };
  /// All cached indexes / probe arrays. Used when a data epoch seeds its
  /// fresh cache from the previous epoch's: entries over unchanged
  /// relations are shared, entries over folded relations are carried
  /// forward incrementally. (Keys are pointer-derived, so epochs must not
  /// share one cache — a freed relation's address could be reused.)
  std::vector<CompositeIndexPtr> Indexes() const;
  std::vector<ProbeSnapshot> Probes() const;

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, CompositeIndexPtr> cache_;
  std::unordered_map<std::string, ProbeSnapshot> probe_cache_;
};

}  // namespace suj

#endif  // SUJ_INDEX_COMPOSITE_INDEX_H_
