#include "index/row_membership_index.h"

namespace suj {

Result<std::shared_ptr<const RowMembershipIndex>> RowMembershipIndex::Build(
    RelationPtr relation, const std::vector<std::string>& attributes) {
  if (relation == nullptr) {
    return Status::InvalidArgument("null relation");
  }
  std::vector<int> cols;
  cols.reserve(attributes.size());
  for (const auto& a : attributes) {
    int idx = relation->schema().FieldIndex(a);
    if (idx < 0) {
      return Status::NotFound("relation '" + relation->name() +
                              "' has no attribute '" + a + "'");
    }
    cols.push_back(idx);
  }
  auto index = std::shared_ptr<RowMembershipIndex>(
      new RowMembershipIndex(std::move(relation), attributes));
  const Relation& rel = *index->relation_;
  index->rows_.reserve(rel.num_rows());
  for (size_t row = 0; row < rel.num_rows(); ++row) {
    index->rows_.insert(rel.ProjectRow(row, cols).Encode());
  }
  return std::shared_ptr<const RowMembershipIndex>(index);
}

}  // namespace suj
