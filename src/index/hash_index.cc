#include "index/hash_index.h"

#include <cstdio>

namespace suj {

const std::vector<uint32_t> HashIndex::kEmpty;

Result<std::shared_ptr<const HashIndex>> HashIndex::Build(
    RelationPtr relation, const std::string& attribute) {
  if (relation == nullptr) {
    return Status::InvalidArgument("null relation");
  }
  int col = relation->schema().FieldIndex(attribute);
  if (col < 0) {
    return Status::NotFound("relation '" + relation->name() +
                            "' has no attribute '" + attribute + "'");
  }
  auto index = std::shared_ptr<HashIndex>(
      new HashIndex(std::move(relation), attribute));
  const Relation& rel = *index->relation_;
  index->map_.reserve(rel.num_rows());
  for (size_t row = 0; row < rel.num_rows(); ++row) {
    auto& rows = index->map_[rel.GetValue(row, col)];
    rows.push_back(static_cast<uint32_t>(row));
    if (rows.size() > index->max_degree_) index->max_degree_ = rows.size();
  }
  return std::shared_ptr<const HashIndex>(index);
}

const std::vector<uint32_t>& HashIndex::Lookup(const Value& v) const {
  auto it = map_.find(v);
  return it == map_.end() ? kEmpty : it->second;
}

double HashIndex::AvgDegree() const {
  if (map_.empty()) return 0.0;
  return static_cast<double>(relation_->num_rows()) /
         static_cast<double>(map_.size());
}

Result<HashIndexPtr> IndexCache::GetOrBuild(const RelationPtr& relation,
                                            const std::string& attribute) {
  char key[64];
  std::snprintf(key, sizeof(key), "%p/", static_cast<const void*>(
                                             relation.get()));
  std::string cache_key = std::string(key) + attribute;
  auto it = cache_.find(cache_key);
  if (it != cache_.end()) return it->second;
  auto built = HashIndex::Build(relation, attribute);
  if (!built.ok()) return built.status();
  cache_.emplace(std::move(cache_key), built.value());
  return std::move(built).value();
}

}  // namespace suj
