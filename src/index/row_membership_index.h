// RowMembershipIndex: O(1) probe for "does this projected row exist in R?".
//
// This powers the membership oracle `t in J` used by the random-walk overlap
// estimator (§6.2) and by the centralized mode of the union sampler: for a
// natural join J over relations R_1..R_m, an output tuple t is in J iff for
// every R_k, the projection of t onto attrs(R_k) is a row of R_k. Each
// relation keeps one hash set of its rows projected onto the attributes that
// appear in the join output.

#ifndef SUJ_INDEX_ROW_MEMBERSHIP_INDEX_H_
#define SUJ_INDEX_ROW_MEMBERSHIP_INDEX_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "storage/relation.h"

namespace suj {

/// \brief Hash set of a relation's rows projected onto a subset of its
/// attributes.
class RowMembershipIndex {
 public:
  /// Builds the index over `attributes` of `relation` (attributes must all
  /// exist; order given here defines the probe-tuple order).
  static Result<std::shared_ptr<const RowMembershipIndex>> Build(
      RelationPtr relation, const std::vector<std::string>& attributes);

  /// True iff some row of the relation projects to `projected` (values in
  /// the attribute order passed to Build).
  bool Contains(const Tuple& projected) const {
    return rows_.count(projected.Encode()) > 0;
  }

  const std::vector<std::string>& attributes() const { return attributes_; }
  size_t NumDistinctRows() const { return rows_.size(); }

 private:
  RowMembershipIndex(RelationPtr relation,
                     std::vector<std::string> attributes)
      : relation_(std::move(relation)), attributes_(std::move(attributes)) {}

  RelationPtr relation_;
  std::vector<std::string> attributes_;
  std::unordered_set<std::string> rows_;  // canonical tuple encodings
};

using RowMembershipIndexPtr = std::shared_ptr<const RowMembershipIndex>;

}  // namespace suj

#endif  // SUJ_INDEX_ROW_MEMBERSHIP_INDEX_H_
