#include "obs/metrics.h"

#include <sstream>

#include "common/logging.h"

namespace suj {
namespace obs {

namespace {

std::atomic<bool> g_metrics_enabled{true};

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

namespace internal {

size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local size_t shard = next.fetch_add(1, std::memory_order_relaxed);
  return shard;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    SUJ_CHECK(bounds_[i - 1] < bounds_[i]);
  }
  shards_.reserve(kShards);
  for (size_t i = 0; i < kShards; ++i) {
    shards_.emplace_back(bounds_.size() + 1);
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < counts.size(); ++i) {
      counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (uint64_t c : BucketCounts()) total += c;
  return total;
}

uint64_t Histogram::Sum() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<uint64_t> Histogram::DefaultLatencyBoundsNs() {
  return {1'000,          10'000,        100'000,        1'000'000,
          10'000'000,     100'000'000,   1'000'000'000,  10'000'000'000ull};
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked singleton: instrument pointers cached in function-local
  // statics all over the process must stay valid through shutdown.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  SUJ_CHECK(ValidMetricName(name));
  std::lock_guard<std::mutex> lock(mu_);
  SUJ_CHECK(gauges_.find(name) == gauges_.end());
  SUJ_CHECK(histograms_.find(name) == histograms_.end());
  auto [it, inserted] = counters_.try_emplace(name);
  if (inserted) it->second.reset(new Counter());
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  SUJ_CHECK(ValidMetricName(name));
  std::lock_guard<std::mutex> lock(mu_);
  SUJ_CHECK(counters_.find(name) == counters_.end());
  SUJ_CHECK(histograms_.find(name) == histograms_.end());
  auto [it, inserted] = gauges_.try_emplace(name);
  if (inserted) it->second.reset(new Gauge());
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<uint64_t> bounds) {
  SUJ_CHECK(ValidMetricName(name));
  std::lock_guard<std::mutex> lock(mu_);
  SUJ_CHECK(counters_.find(name) == counters_.end());
  SUJ_CHECK(gauges_.find(name) == gauges_.end());
  auto [it, inserted] = histograms_.try_emplace(name);
  if (inserted) it->second.reset(new Histogram(std::move(bounds)));
  return it->second.get();
}

std::string MetricsRegistry::RenderPrometheusText() const {
  // Instrument writes are relaxed and scrape-time aggregated: the render
  // is a consistent-enough snapshot (each cell read once), it just is
  // not a cross-metric atomic cut — standard for Prometheus clients.
  std::ostringstream os;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    os << "# TYPE " << name << " counter\n"
       << name << " " << counter->Value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    os << "# TYPE " << name << " gauge\n"
       << name << " " << gauge->Value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    os << "# TYPE " << name << " histogram\n";
    const std::vector<uint64_t> counts = histogram->BucketCounts();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < histogram->bounds().size(); ++i) {
      cumulative += counts[i];
      os << name << "_bucket{le=\"" << histogram->bounds()[i] << "\"} "
         << cumulative << "\n";
    }
    cumulative += counts.back();
    os << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n"
       << name << "_sum " << histogram->Sum() << "\n"
       << name << "_count " << cumulative << "\n";
  }
  return os.str();
}

}  // namespace obs
}  // namespace suj
