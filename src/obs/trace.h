// Per-request tracing: a TraceContext travels with one request through
// net -> service -> admission/tenant -> exec -> core, collecting stage
// spans (start + duration). Finished traces feed two consumers:
//
//  * a process-wide lock-free SpanRing (fixed capacity, overwriting) a
//    debugger or test can snapshot to see recent stage timings, and
//  * the slow-request log: a request whose serve time crosses the
//    Tracer's threshold dumps a structured per-stage breakdown through
//    SUJ_LOG(WARN) and bumps suj_service_slow_requests_total.
//
// Deep layers never see a trace parameter: the net layer installs the
// request's context in a thread-local slot (TraceScope), and ScopedSpan
// at any depth records into whatever context is installed — a no-op
// (one thread-local load) when none is, so library users pay nothing.
// Stream producers run on their own thread and install their own
// context there.
//
// Like the metrics registry, tracing reads clocks but never touches an
// Rng or a sample: the delivered bytes are identical with tracing on or
// off.

#ifndef SUJ_OBS_TRACE_H_
#define SUJ_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace suj {
namespace obs {

/// Monotonic process clock (steady_clock), ns.
int64_t MonotonicNs();

/// Request stages, one per instrumented layer boundary.
enum class Stage : uint8_t {
  kWireRead = 0,    ///< reading the request frame (includes peer think time)
  kWireWrite,       ///< writing response/chunk frames
  kAdmissionWait,   ///< blocking in the admission queue
  kTenantCheck,     ///< tenant/session token-bucket charge
  kPrepare,         ///< plan build (warm-up, indexes)
  kWalk,            ///< the sampling work itself (core loop / executor)
  kReconcile,       ///< revision-mode reconciliation passes
  kStreamChunk,     ///< producing one stream chunk
};
constexpr size_t kNumStages = 8;

const char* StageName(Stage stage);

/// One finished span as stored in the ring.
struct SpanRecord {
  uint64_t trace_id = 0;
  Stage stage = Stage::kWireRead;
  int64_t start_ns = 0;     ///< MonotonicNs at span start
  int64_t duration_ns = 0;
};

/// \brief Lock-free overwriting ring of finished spans.
///
/// Writers claim slots with one relaxed fetch_add; every slot field is
/// atomic, with a per-slot sequence for tear detection, so concurrent
/// writers and Snapshot readers are race-free (TSan-clean). A reader
/// that catches a slot mid-write simply skips it — the ring is a
/// best-effort flight recorder, not an accounting structure.
class SpanRing {
 public:
  explicit SpanRing(size_t capacity_pow2 = 4096);
  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  void Push(const SpanRecord& record);

  /// Stable (fully published) records currently in the ring, oldest
  /// first. Size <= capacity.
  std::vector<SpanRecord> Snapshot() const;

  size_t capacity() const { return slots_.size(); }

 private:
  struct Slot {
    /// 0 = never written; otherwise 2*ticket+1 while writing, 2*ticket+2
    /// when published.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint8_t> stage{0};
    std::atomic<int64_t> start_ns{0};
    std::atomic<int64_t> duration_ns{0};
  };

  std::vector<Slot> slots_;
  std::atomic<uint64_t> next_{0};
};

/// \brief One request's trace: identity plus its recorded spans.
///
/// Fixed inline span storage — recording never allocates. Overflowing
/// spans are counted, not stored.
class TraceContext {
 public:
  static constexpr size_t kMaxSpans = 32;

  TraceContext(uint64_t trace_id, const char* op)
      : trace_id_(trace_id), op_(op), start_ns_(MonotonicNs()) {}

  void Record(Stage stage, int64_t start_ns, int64_t duration_ns) {
    if (count_ < kMaxSpans) {
      spans_[count_++] = SpanRecord{trace_id_, stage, start_ns, duration_ns};
    } else {
      ++dropped_;
    }
  }

  uint64_t trace_id() const { return trace_id_; }
  const char* op() const { return op_; }
  int64_t start_ns() const { return start_ns_; }
  size_t span_count() const { return count_; }
  uint64_t dropped() const { return dropped_; }
  const SpanRecord* spans() const { return spans_; }

 private:
  const uint64_t trace_id_;
  const char* const op_;
  const int64_t start_ns_;
  SpanRecord spans_[kMaxSpans];
  size_t count_ = 0;
  uint64_t dropped_ = 0;
};

/// The context installed for the calling thread (nullptr when none).
TraceContext* CurrentTrace();

/// RAII installer: makes `ctx` the thread's current trace, restoring
/// the previous one on destruction (scopes nest).
class TraceScope {
 public:
  explicit TraceScope(TraceContext* ctx);
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceContext* const prev_;
};

/// RAII span: records [construction, destruction) of `stage` into the
/// thread's current trace. One thread-local load when no trace is
/// installed.
class ScopedSpan {
 public:
  explicit ScopedSpan(Stage stage)
      : ctx_(CurrentTrace()),
        stage_(stage),
        start_ns_(ctx_ != nullptr ? MonotonicNs() : 0) {}
  ~ScopedSpan() {
    if (ctx_ != nullptr) {
      ctx_->Record(stage_, start_ns_, MonotonicNs() - start_ns_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceContext* const ctx_;
  const Stage stage_;
  const int64_t start_ns_;
};

/// \brief Trace-id source, span ring, and the slow-request policy.
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Process-wide instance. Threshold is initialized from the
  /// SUJ_SLOW_REQUEST_NS environment variable (unset or negative =
  /// slow log disabled; 0 = log every finished request).
  static Tracer& Global();

  uint64_t NextTraceId() {
    return next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Requests at or above this total duration emit the slow-request
  /// log line. 0 disables.
  void set_slow_threshold_ns(int64_t ns) {
    slow_threshold_ns_.store(ns, std::memory_order_relaxed);
  }
  int64_t slow_threshold_ns() const {
    return slow_threshold_ns_.load(std::memory_order_relaxed);
  }

  /// Retires a finished request: pushes its spans into the ring and,
  /// when total serve time (now - ctx.start_ns) crosses the threshold,
  /// emits the structured slow-request line via SUJ_LOG(WARN) and
  /// increments suj_service_slow_requests_total. `detail` is appended
  /// verbatim (e.g. "tenant=a n=64").
  void Finish(const TraceContext& ctx, const std::string& detail = "");

  SpanRing& ring() { return ring_; }

 private:
  std::atomic<uint64_t> next_id_{0};
  std::atomic<int64_t> slow_threshold_ns_;
  SpanRing ring_;
};

}  // namespace obs
}  // namespace suj

#endif  // SUJ_OBS_TRACE_H_
