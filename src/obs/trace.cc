#include "obs/trace.h"

#include <chrono>
#include <cstdlib>
#include <sstream>

#include "common/logging.h"
#include "obs/metrics.h"

namespace suj {
namespace obs {

namespace {

thread_local TraceContext* t_current_trace = nullptr;

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

int64_t MonotonicNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kWireRead:
      return "wire_read";
    case Stage::kWireWrite:
      return "wire_write";
    case Stage::kAdmissionWait:
      return "admission_wait";
    case Stage::kTenantCheck:
      return "tenant_check";
    case Stage::kPrepare:
      return "prepare";
    case Stage::kWalk:
      return "walk";
    case Stage::kReconcile:
      return "reconcile";
    case Stage::kStreamChunk:
      return "stream_chunk";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// SpanRing

SpanRing::SpanRing(size_t capacity_pow2)
    : slots_(RoundUpPow2(capacity_pow2 == 0 ? 1 : capacity_pow2)) {}

void SpanRing::Push(const SpanRecord& record) {
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & (slots_.size() - 1)];
  // Seqlock publication. Two writers lapping each other on one slot
  // (ring wrapped mid-write) can interleave field stores; the seq
  // values they leave behind never match a consistent published state,
  // so readers drop the slot. Every field is atomic: no data races.
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  slot.trace_id.store(record.trace_id, std::memory_order_relaxed);
  slot.stage.store(static_cast<uint8_t>(record.stage),
                   std::memory_order_relaxed);
  slot.start_ns.store(record.start_ns, std::memory_order_relaxed);
  slot.duration_ns.store(record.duration_ns, std::memory_order_relaxed);
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<SpanRecord> SpanRing::Snapshot() const {
  std::vector<SpanRecord> out;
  const uint64_t end = next_.load(std::memory_order_acquire);
  const uint64_t count = slots_.size();
  const uint64_t begin = end > count ? end - count : 0;
  out.reserve(static_cast<size_t>(end - begin));
  for (uint64_t ticket = begin; ticket < end; ++ticket) {
    const Slot& slot = slots_[ticket & (count - 1)];
    const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    if (seq_before != 2 * ticket + 2) continue;  // unpublished or lapped
    SpanRecord record;
    record.trace_id = slot.trace_id.load(std::memory_order_relaxed);
    record.stage =
        static_cast<Stage>(slot.stage.load(std::memory_order_relaxed));
    record.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    record.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != seq_before) {
      continue;  // torn by a lapping writer mid-read
    }
    out.push_back(record);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Thread-local current trace

TraceContext* CurrentTrace() { return t_current_trace; }

TraceScope::TraceScope(TraceContext* ctx) : prev_(t_current_trace) {
  t_current_trace = ctx;
}

TraceScope::~TraceScope() { t_current_trace = prev_; }

// ---------------------------------------------------------------------------
// Tracer

Tracer::Tracer() {
  // Unset => -1 (slow log disabled). An explicit "0" logs every
  // request: the disabled state is the negative sentinel, not zero, so
  // operators can turn the log into a full request trace.
  const char* env = std::getenv("SUJ_SLOW_REQUEST_NS");
  slow_threshold_ns_.store(env != nullptr ? std::atoll(env) : -1,
                           std::memory_order_relaxed);
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Finish(const TraceContext& ctx, const std::string& detail) {
  for (size_t i = 0; i < ctx.span_count(); ++i) {
    ring_.Push(ctx.spans()[i]);
  }
  const int64_t threshold = slow_threshold_ns();
  if (threshold < 0) return;
  const int64_t total_ns = MonotonicNs() - ctx.start_ns();
  if (total_ns < threshold) return;

  static Counter* const slow_requests =
      MetricsRegistry::Global().GetCounter("suj_service_slow_requests_total");
  slow_requests->Increment();

  // Per-stage sums: one number per stage beats 32 raw spans in a log
  // line, and the stage set is tiny and fixed.
  int64_t by_stage[kNumStages] = {0};
  for (size_t i = 0; i < ctx.span_count(); ++i) {
    by_stage[static_cast<size_t>(ctx.spans()[i].stage)] +=
        ctx.spans()[i].duration_ns;
  }
  std::ostringstream line;
  line << "slow request: op=" << ctx.op() << " trace_id=" << ctx.trace_id()
       << " total_us=" << total_ns / 1000;
  for (size_t s = 0; s < kNumStages; ++s) {
    if (by_stage[s] == 0) continue;
    line << " " << StageName(static_cast<Stage>(s))
         << "_us=" << by_stage[s] / 1000;
  }
  if (ctx.dropped() > 0) line << " spans_dropped=" << ctx.dropped();
  if (!detail.empty()) line << " " << detail;
  SUJ_LOG(WARN) << line.str();
}

}  // namespace obs
}  // namespace suj
