// MetricsRegistry: process-wide named counters, gauges, and fixed-
// boundary latency histograms with Prometheus-text exposition.
//
// Design constraints, in order:
//
//  1. Hot-path increments must cost a few nanoseconds. Counters and
//     histograms are sharded into cache-line-aligned per-cell atomics;
//     each thread is assigned a shard round-robin on first use, so an
//     increment is one relaxed fetch_add on a line that (almost) no
//     other thread touches. Aggregation happens at scrape time, where
//     latency does not matter.
//  2. Observability must never perturb what is being observed. Nothing
//     in this file touches an Rng, takes a lock on the sample path, or
//     changes control flow — samples are byte-identical with metrics
//     enabled or disabled (tests/metrics_test.cc asserts this end to
//     end, and the CI perf gate bounds the enabled-path overhead).
//  3. No dependencies beyond the standard library.
//
// Instruments are registered by name (Prometheus conventions:
// [a-zA-Z_:][a-zA-Z0-9_:]*; plain names, no labels) and live for the
// registry's lifetime; Get* returns a stable raw pointer, so call sites
// cache it in a function-local static and never re-enter the registry:
//
//   static obs::Counter* const c =
//       obs::MetricsRegistry::Global().GetCounter("suj_x_total");
//   c->Increment();
//
// SetMetricsEnabled(false) freezes every instrument in the process (the
// metrics-off benchmark anchor); reads stay valid.

#ifndef SUJ_OBS_METRICS_H_
#define SUJ_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace suj {
namespace obs {

/// Process-wide switch consulted by every instrument write. Relaxed: a
/// toggle takes effect "soon", which is all on/off comparisons need.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

namespace internal {
/// Round-robin shard index of the calling thread, assigned on first use.
size_t ThreadShard();
}  // namespace internal

/// Monotonically increasing counter. Exact under concurrent increments:
/// shards never lose updates, and Value() sums them all.
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Increment(uint64_t delta = 1) {
    if (!MetricsEnabled()) return;
    cells_[internal::ThreadShard() % kShards].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;

  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };
  Cell cells_[kShards];
};

/// Last-written-wins level (sessions open, bytes resident, ...). Set at
/// scrape or event time; not sharded (writes are rare).
class Gauge {
 public:
  void Set(int64_t value) {
    if (!MetricsEnabled()) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (!MetricsEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

/// Fixed-boundary histogram of nanosecond durations. `bounds` are
/// inclusive upper bounds in ascending order; one implicit +Inf bucket
/// tops them off. Sharded like Counter.
class Histogram {
 public:
  static constexpr size_t kShards = 8;

  void Observe(uint64_t value_ns) {
    if (!MetricsEnabled()) return;
    Shard& shard = shards_[internal::ThreadShard() % kShards];
    shard.buckets[BucketIndex(value_ns)].fetch_add(1,
                                                   std::memory_order_relaxed);
    shard.sum.fetch_add(value_ns, std::memory_order_relaxed);
  }

  const std::vector<uint64_t>& bounds() const { return bounds_; }

  /// Per-bucket counts (bounds_.size() + 1 entries, last = +Inf),
  /// aggregated over shards. Not cumulative.
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const;
  uint64_t Sum() const;

  /// The standard latency ladder: 1us .. 10s, one decade per bucket.
  static std::vector<uint64_t> DefaultLatencyBoundsNs();

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<uint64_t> bounds);

  size_t BucketIndex(uint64_t value_ns) const {
    size_t i = 0;
    while (i < bounds_.size() && value_ns > bounds_[i]) ++i;
    return i;
  }

  struct alignas(64) Shard {
    explicit Shard(size_t buckets_size)
        : buckets(new std::atomic<uint64_t>[buckets_size]) {
      for (size_t i = 0; i < buckets_size; ++i) buckets[i].store(0);
    }
    // Setup-time only (vector growth during construction); shards are
    // never moved once the histogram is live.
    Shard(Shard&& other) noexcept
        : buckets(std::move(other.buckets)),
          sum(other.sum.load(std::memory_order_relaxed)) {}
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    std::atomic<uint64_t> sum{0};
  };

  const std::vector<uint64_t> bounds_;
  std::vector<Shard> shards_;
};

/// \brief Named-instrument registry with Prometheus-text rendering.
///
/// Instantiable for tests (golden renders against a private registry);
/// production code uses Global(). Registration is idempotent — the
/// first caller creates, every later caller gets the same pointer —
/// and instruments are never removed.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// Name rules (SUJ_CHECKed): Prometheus bare metric names, and one
  /// name belongs to exactly one instrument kind for the registry's
  /// lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` must be ascending; later calls for the same name ignore
  /// their bounds argument and return the registered instrument.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<uint64_t> bounds);

  /// Prometheus text exposition (v0.0.4): `# TYPE` line per metric,
  /// cumulative `_bucket{le="..."}` series plus `_sum`/`_count` for
  /// histograms, sorted by name within each instrument kind.
  std::string RenderPrometheusText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace suj

#endif  // SUJ_OBS_METRICS_H_
