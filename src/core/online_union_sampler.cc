#include "core/online_union_sampler.h"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace suj {

namespace {
using Clock = std::chrono::steady_clock;
double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}
}  // namespace

Result<std::unique_ptr<OnlineUnionSampler>> OnlineUnionSampler::Create(
    std::vector<JoinSpecPtr> joins, RandomWalkOverlapEstimator* walker,
    UnionEstimates initial, Options options) {
  SUJ_RETURN_NOT_OK(ValidateUnionCompatible(joins));
  if (walker == nullptr) {
    return Status::InvalidArgument("null random-walk estimator");
  }
  if (walker->joins().size() != joins.size()) {
    return Status::InvalidArgument(
        "random-walk estimator covers a different join set");
  }
  if (initial.cover_sizes.size() != joins.size()) {
    return Status::InvalidArgument("estimates do not match the join count");
  }
  double total = 0.0;
  for (double c : initial.cover_sizes) total += c;
  if (total <= 0.0) {
    return Status::FailedPrecondition(
        "all cover sizes are zero; the union is (estimated) empty");
  }
  auto sampler = std::unique_ptr<OnlineUnionSampler>(new OnlineUnionSampler(
      std::move(joins), walker, std::move(initial), options));
  sampler->disabled_.assign(sampler->joins_.size(), false);
  if (options.mode == UnionSampler::Mode::kMembershipOracle) {
    auto probers = BuildProbers(sampler->joins_);
    if (!probers.ok()) return probers.status();
    sampler->probers_ = std::move(probers).value();
  }
  // Seed the reuse pools from the warm-up walk records.
  sampler->pools_.resize(sampler->joins_.size());
  sampler->pool_min_p_.assign(sampler->joins_.size(), 1.0);
  if (options.enable_reuse) {
    for (size_t j = 0; j < sampler->joins_.size(); ++j) {
      for (const auto& rec : walker->records(static_cast<int>(j))) {
        sampler->pools_[j].push_back({rec.tuple, rec.probability});
        sampler->pool_min_p_[j] =
            std::min(sampler->pool_min_p_[j], rec.probability);
      }
    }
  }
  return sampler;
}

double OnlineUnionSampler::TupleProbability(int owner_join) const {
  double total = 0.0;
  for (double c : estimates_.cover_sizes) total += c;
  if (total <= 0.0 || estimates_.join_sizes[owner_join] <= 0.0) return 0.0;
  return estimates_.cover_sizes[owner_join] / total /
         estimates_.join_sizes[owner_join];
}

Status OnlineUnionSampler::Backtrack(std::vector<Tuple>* result,
                                     std::vector<std::string>* keys,
                                     std::vector<int>* owners,
                                     std::vector<double>* probs, Rng& rng) {
  auto start = Clock::now();
  ++stats_.backtracks;
  auto updated = ComputeUnionEstimates(walker_);
  if (!updated.ok()) return updated.status();
  estimates_ = std::move(updated).value();

  // Thin previously accepted tuples toward the updated distribution: keep
  // with probability min(1, p_new / p_old). A tuple kept has effective
  // density min(p_old, p_new), which we record for the next pass.
  size_t kept = 0;
  for (size_t i = 0; i < result->size(); ++i) {
    double p_old = (*probs)[i];
    double p_new = TupleProbability((*owners)[i]);
    double keep = p_old > 0.0 ? std::min(1.0, p_new / p_old) : 0.0;
    if (rng.Bernoulli(keep)) {
      if (kept != i) {
        (*result)[kept] = std::move((*result)[i]);
        (*keys)[kept] = std::move((*keys)[i]);
        (*owners)[kept] = (*owners)[i];
      }
      (*probs)[kept] = std::min(p_old, p_new);
      ++kept;
    }
  }
  stats_.removed_by_backtrack += result->size() - kept;
  result->resize(kept);
  keys->resize(kept);
  owners->resize(kept);
  probs->resize(kept);

  // Stop backtracking once every join's estimate reaches confidence gamma.
  bool confident = true;
  for (int j = 0; j < static_cast<int>(joins_.size()); ++j) {
    if (walker_->JoinSizeRelativeHalfWidth(j, options_.confidence) >
        options_.ci_threshold) {
      confident = false;
      break;
    }
  }
  if (confident) backtracking_active_ = false;
  stats_.backtrack_seconds += SecondsSince(start);
  return Status::OK();
}

Result<std::vector<Tuple>> OnlineUnionSampler::Sample(size_t n, Rng& rng) {
  std::vector<Tuple> result;
  std::vector<std::string> keys;
  std::vector<int> owners;
  std::vector<double> probs;
  result.reserve(n);

  // Accepts `instances` copies of `t` into the result, subject to the
  // union-level ownership check. Returns the number of copies added
  // (0 == cover rejection).
  auto union_accept = [&](Tuple t, int j, uint64_t instances,
                          Rng& r) -> Result<uint64_t> {
    std::string key = t.Encode();
    if (options_.mode == UnionSampler::Mode::kMembershipOracle) {
      // f(u): the first join containing the value (probed exactly, cached).
      (void)r;
      auto cached = owner_.find(key);
      int f;
      if (cached != owner_.end()) {
        f = cached->second;
      } else {
        f = -1;
        for (size_t i = 0; i < probers_.size(); ++i) {
          if (probers_[i]->Contains(t)) {
            f = static_cast<int>(i);
            break;
          }
        }
        owner_.emplace(key, f);
      }
      if (f != j) {
        ++stats_.rejected_cover;
        return 0;
      }
    } else {
      auto it = owner_.find(key);
      if (it != owner_.end() && it->second < j) {
        ++stats_.rejected_cover;
        return 0;
      }
      if (it != owner_.end() && it->second > j) {
        ++stats_.revisions;
        size_t before = result.size();
        for (size_t k = result.size(); k-- > 0;) {
          if (keys[k] == key) {
            result.erase(result.begin() + k);
            keys.erase(keys.begin() + k);
            owners.erase(owners.begin() + k);
            probs.erase(probs.begin() + k);
          }
        }
        stats_.removed_by_revision += before - result.size();
        it->second = j;
      } else if (it == owner_.end()) {
        owner_.emplace(key, j);
      }
    }
    double p = TupleProbability(j);
    for (uint64_t c = 0; c < instances; ++c) {
      result.push_back(t);
      keys.push_back(key);
      owners.push_back(j);
      probs.push_back(p);
    }
    stats_.accepted += instances;
    return instances;
  };

  while (result.size() < n) {
    ++stats_.rounds;
    std::vector<double> weights = estimates_.cover_sizes;
    double remaining = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      if (disabled_[i]) weights[i] = 0.0;
      remaining += weights[i];
    }
    if (remaining <= 0.0) {
      return Status::Internal(
          "every join's cover was abandoned; warm-up estimates are "
          "inconsistent with the data");
    }
    int j = static_cast<int>(rng.Categorical(weights));
    double join_size = std::max(estimates_.join_sizes[j], 1e-12);

    bool round_done = false;
    for (uint64_t draw = 0;
         draw < options_.max_draws_per_round && !round_done; ++draw) {
      auto start = Clock::now();
      ++stats_.join_draws;
      ++recorded_since_backtrack_;

      if (options_.enable_reuse && !pools_[j].empty()) {
        // ---- Reuse phase: draw from the warm-up pool, no walk needed ----
        ++stats_.reuse_draws;
        size_t pick = rng.UniformInt(pools_[j].size());
        PoolEntry entry = std::move(pools_[j][pick]);
        pools_[j][pick] = std::move(pools_[j].back());
        pools_[j].pop_back();

        // Expected pool multiplicity of a tuple is proportional to its walk
        // probability; accepting with p_min/p(t) equalizes emission rates
        // (see header). The entry is consumed either way.
        if (!rng.Bernoulli(pool_min_p_[j] / entry.probability)) {
          double dt = SecondsSince(start);
          stats_.reuse_seconds += dt;
          stats_.rejected_seconds += dt;
          continue;
        }
        auto added = union_accept(std::move(entry.tuple), j, 1, rng);
        if (!added.ok()) return added.status();
        double dt = SecondsSince(start);
        stats_.reuse_seconds += dt;
        if (added.value() > 0) {
          stats_.reuse_accepted += added.value();
          stats_.accepted_seconds += dt;
          round_done = true;
        } else {
          stats_.rejected_seconds += dt;
        }
      } else {
        // ---- Regular phase: fresh wander-join walk ----
        ++stats_.fresh_walks;
        auto outcome = walker_->WalkAndRecord(j, rng);
        if (!outcome.ok()) return outcome.status();
        if (!outcome->success) {
          double dt = SecondsSince(start);
          stats_.regular_seconds += dt;
          stats_.rejected_seconds += dt;
          continue;
        }
        double rate = 1.0 / (outcome->probability * join_size);
        uint64_t instances = static_cast<uint64_t>(rate);
        if (rng.Bernoulli(rate - std::floor(rate))) ++instances;
        if (instances == 0) {
          double dt = SecondsSince(start);
          stats_.regular_seconds += dt;
          stats_.rejected_seconds += dt;
          continue;
        }
        auto added =
            union_accept(std::move(outcome->tuple), j, instances, rng);
        if (!added.ok()) return added.status();
        double dt = SecondsSince(start);
        stats_.regular_seconds += dt;
        if (added.value() > 0) {
          stats_.fresh_accepted += added.value();
          stats_.accepted_seconds += dt;
          round_done = true;
        } else {
          stats_.rejected_seconds += dt;
        }
      }

      // Backtracking with parameter update (Algorithm 2, lines 18-20).
      if (options_.backtrack_interval > 0 && backtracking_active_ &&
          recorded_since_backtrack_ >= options_.backtrack_interval) {
        recorded_since_backtrack_ = 0;
        SUJ_RETURN_NOT_OK(Backtrack(&result, &keys, &owners, &probs, rng));
        join_size = std::max(estimates_.join_sizes[j], 1e-12);
      }
    }
    if (!round_done) {
      // No owned tuple within the budget: the join's real cover is
      // (effectively) empty; exclude it from further selection.
      ++stats_.abandoned_rounds;
      disabled_[j] = true;
    }
  }
  result.resize(n);  // multi-instance accepts can overshoot
  return result;
}

}  // namespace suj
