#include "core/online_union_sampler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_map>

#include "common/alias_table.h"
#include "exec/parallel_executor.h"

namespace suj {

namespace {
using Clock = std::chrono::steady_clock;
double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Horvitz-Thompson acceptance for one successful walk: the number of
// uniform-sample instances it yields under the current |J_j| estimate,
// rounding the fractional part with a Bernoulli draw. Shared by the
// sequential regular phase and the parallel fresh-walk workers so the two
// tails cannot drift apart.
uint64_t WalkInstances(double walk_probability, double join_size, Rng& rng) {
  double rate = 1.0 / (walk_probability * join_size);
  uint64_t instances = static_cast<uint64_t>(rate);
  if (rng.Bernoulli(rate - std::floor(rate))) ++instances;
  return instances;
}
}  // namespace

Status OnlineUnionSampleStats::MergeFrom(const OnlineUnionSampleStats& other) {
  SUJ_RETURN_NOT_OK(UnionSampleStats::MergeFrom(other));
  reuse_draws += other.reuse_draws;
  reuse_accepted += other.reuse_accepted;
  fresh_walks += other.fresh_walks;
  fresh_accepted += other.fresh_accepted;
  backtracks += other.backtracks;
  removed_by_backtrack += other.removed_by_backtrack;
  reuse_seconds += other.reuse_seconds;
  regular_seconds += other.regular_seconds;
  backtrack_seconds += other.backtrack_seconds;
  return Status::OK();
}

Result<std::unique_ptr<OnlineUnionSampler>> OnlineUnionSampler::Create(
    std::vector<JoinSpecPtr> joins, RandomWalkOverlapEstimator* walker,
    UnionEstimates initial, Options options) {
  SUJ_RETURN_NOT_OK(ValidateUnionCompatible(joins));
  if (walker == nullptr) {
    return Status::InvalidArgument("null random-walk estimator");
  }
  if (walker->joins().size() != joins.size()) {
    return Status::InvalidArgument(
        "random-walk estimator covers a different join set");
  }
  if (initial.cover_sizes.size() != joins.size()) {
    return Status::InvalidArgument("estimates do not match the join count");
  }
  double total = 0.0;
  for (double c : initial.cover_sizes) total += c;
  if (total <= 0.0) {
    return Status::FailedPrecondition(
        "all cover sizes are zero; the union is (estimated) empty");
  }
  if (options.index_cache != nullptr) {
    if (options.mode != UnionSampler::Mode::kMembershipOracle) {
      return Status::InvalidArgument(
          "parallel fresh walks require kMembershipOracle mode (revision "
          "ownership is shared mutable state)");
    }
    if (options.batch_size == 0) {
      return Status::InvalidArgument("batch_size must be positive");
    }
  } else if (options.num_threads != 1) {
    return Status::InvalidArgument(
        "num_threads != 1 requires index_cache for per-worker wander-join "
        "samplers");
  }
  if (!options.probers.empty() && options.probers.size() != joins.size()) {
    return Status::InvalidArgument(
        "shared probers do not match the join count");
  }
  auto sampler = std::unique_ptr<OnlineUnionSampler>(new OnlineUnionSampler(
      std::move(joins), walker, std::move(initial), options));
  sampler->disabled_.assign(sampler->joins_.size(), false);
  if (options.mode == UnionSampler::Mode::kMembershipOracle) {
    if (!sampler->options_.probers.empty()) {
      sampler->probers_ = sampler->options_.probers;
    } else {
      auto probers = BuildProbers(sampler->joins_);
      if (!probers.ok()) return probers.status();
      sampler->probers_ = std::move(probers).value();
    }
  }
  // Seed the reuse pools from the warm-up walk records.
  sampler->pools_.resize(sampler->joins_.size());
  sampler->pool_min_p_.assign(sampler->joins_.size(), 1.0);
  if (options.enable_reuse) {
    for (size_t j = 0; j < sampler->joins_.size(); ++j) {
      for (const auto& rec : walker->records(static_cast<int>(j))) {
        sampler->pools_[j].push_back({rec.tuple, rec.probability});
        sampler->pool_min_p_[j] =
            std::min(sampler->pool_min_p_[j], rec.probability);
      }
    }
  }
  return sampler;
}

double OnlineUnionSampler::TupleProbability(int owner_join) const {
  double total = 0.0;
  for (double c : estimates_.cover_sizes) total += c;
  if (total <= 0.0 || estimates_.join_sizes[owner_join] <= 0.0) return 0.0;
  return estimates_.cover_sizes[owner_join] / total /
         estimates_.join_sizes[owner_join];
}

Status OnlineUnionSampler::Backtrack(std::vector<Tuple>* result,
                                     std::vector<std::string>* keys,
                                     std::vector<int>* owners,
                                     std::vector<double>* probs, Rng& rng) {
  auto start = Clock::now();
  ++stats_.backtracks;
  auto updated = ComputeUnionEstimates(walker_);
  if (!updated.ok()) return updated.status();
  estimates_ = std::move(updated).value();

  // Thin previously accepted tuples toward the updated distribution: keep
  // with probability min(1, p_new / p_old). A tuple kept has effective
  // density min(p_old, p_new), which we record for the next pass.
  size_t kept = 0;
  for (size_t i = 0; i < result->size(); ++i) {
    double p_old = (*probs)[i];
    double p_new = TupleProbability((*owners)[i]);
    double keep = p_old > 0.0 ? std::min(1.0, p_new / p_old) : 0.0;
    if (rng.Bernoulli(keep)) {
      if (kept != i) {
        (*result)[kept] = std::move((*result)[i]);
        (*keys)[kept] = std::move((*keys)[i]);
        (*owners)[kept] = (*owners)[i];
      }
      (*probs)[kept] = std::min(p_old, p_new);
      ++kept;
    }
  }
  stats_.removed_by_backtrack += result->size() - kept;
  result->resize(kept);
  keys->resize(kept);
  owners->resize(kept);
  probs->resize(kept);

  // Stop backtracking once every join's estimate reaches confidence gamma.
  bool confident = true;
  for (int j = 0; j < static_cast<int>(joins_.size()); ++j) {
    if (walker_->JoinSizeRelativeHalfWidth(j, options_.confidence) >
        options_.ci_threshold) {
      confident = false;
      break;
    }
  }
  if (confident) backtracking_active_ = false;
  stats_.backtrack_seconds += SecondsSince(start);
  return Status::OK();
}

bool OnlineUnionSampler::ParallelTailReady() const {
  if (options_.backtrack_interval > 0 && backtracking_active_) return false;
  if (options_.enable_reuse) {
    for (size_t j = 0; j < pools_.size(); ++j) {
      if (!disabled_[j] && !pools_[j].empty()) return false;
    }
  }
  return true;
}

namespace {

// Per-worker fresh-walk context for the parallel phase: Algorithm 2's
// regular phase against frozen estimates. Shared state (probers, weights,
// join sizes) is read-only; the wander-join samplers, ownership memo, and
// stats are private to the worker. The selection-weight copy is re-made
// per batch so an abandoned join in one batch cannot leak into the next
// (which would make batch output depend on scheduling); abandonment is
// instead reported through abandoned_sink_ and applied by the caller
// AFTER the whole fan-out, where it no longer affects batch contents.
class FreshWalkBatchSampler : public BatchSampler {
 public:
  FreshWalkBatchSampler(std::vector<std::unique_ptr<WanderJoinSampler>> wander,
                        std::vector<JoinMembershipProberPtr> probers,
                        std::vector<double> weights,
                        std::vector<double> join_sizes,
                        uint64_t max_draws_per_round,
                        OnlineUnionSampleStats* sink,
                        std::vector<uint8_t>* abandoned_sink)
      : wander_(std::move(wander)),
        probers_(std::move(probers)),
        weights_(std::move(weights)),
        join_sizes_(std::move(join_sizes)),
        max_draws_per_round_(max_draws_per_round),
        sink_(sink),
        abandoned_sink_(abandoned_sink) {}

  // Not copyable or movable: oracle_ points into this object's probers_.
  FreshWalkBatchSampler(const FreshWalkBatchSampler&) = delete;
  FreshWalkBatchSampler& operator=(const FreshWalkBatchSampler&) = delete;

  Result<std::vector<Tuple>> SampleBatch(size_t count, Rng& rng) override {
    // Alias-backed O(1) selection over the batch-local weight copy; the
    // build consumes no RNG, so batch bytes are unchanged properties of
    // (seed, batch index). Build/Zero fail exactly when no cover remains.
    auto selector = WeightedSelector::Build(weights_);
    if (!selector.ok()) {
      return Status::Internal(
          "every join's cover was abandoned; warm-up estimates are "
          "inconsistent with the data");
    }
    std::vector<Tuple> out;
    out.reserve(count);
    while (out.size() < count) {
      ++sink_->rounds;
      int j = static_cast<int>(selector->Sample(rng));
      uint64_t added = RunRound(j, &out, rng);
      if (added == 0) {
        ++sink_->abandoned_rounds;
        (*abandoned_sink_)[j] = 1;
        if (!selector->Zero(static_cast<size_t>(j)).ok()) {
          return Status::Internal(
              "every join's cover was abandoned; warm-up estimates are "
              "inconsistent with the data");
        }
      }
    }
    return out;
  }

  /// One Algorithm-2 round against join j: up to max_draws_per_round
  /// attempts; appends accepted instances to *out and returns the count
  /// (0 == the round exhausted its budget, i.e. abandonment). Also the
  /// viability probe of the caller's pre-pass.
  uint64_t RunRound(int j, std::vector<Tuple>* out, Rng& rng) {
    const double join_size = std::max(join_sizes_[j], 1e-12);
    for (uint64_t draw = 0; draw < max_draws_per_round_; ++draw) {
      auto start = Clock::now();
      ++sink_->join_draws;
      ++sink_->fresh_walks;
      WalkOutcome outcome = wander_[j]->Walk(rng);
      if (!outcome.success) {
        double dt = SecondsSince(start);
        sink_->regular_seconds += dt;
        sink_->rejected_seconds += dt;
        continue;
      }
      uint64_t instances = WalkInstances(outcome.probability, join_size, rng);
      if (instances == 0) {
        double dt = SecondsSince(start);
        sink_->regular_seconds += dt;
        sink_->rejected_seconds += dt;
        continue;
      }
      if (oracle_.Owner(outcome.tuple) != j) {
        ++sink_->rejected_cover;
        double dt = SecondsSince(start);
        sink_->regular_seconds += dt;
        sink_->rejected_seconds += dt;
        continue;
      }
      for (uint64_t c = 0; c < instances; ++c) out->push_back(outcome.tuple);
      sink_->accepted += instances;
      sink_->fresh_accepted += instances;
      double dt = SecondsSince(start);
      sink_->regular_seconds += dt;
      sink_->accepted_seconds += dt;
      return instances;
    }
    return 0;
  }

  UnionSampleStats stats() const override { return *sink_; }

 private:
  std::vector<std::unique_ptr<WanderJoinSampler>> wander_;
  std::vector<JoinMembershipProberPtr> probers_;
  std::vector<double> weights_;
  std::vector<double> join_sizes_;
  uint64_t max_draws_per_round_;
  OnlineUnionSampleStats* sink_;
  /// Joins this worker abandoned (caller folds these into disabled_).
  std::vector<uint8_t>* abandoned_sink_;
  /// Per-worker memoized f(u) over the shared probers.
  OwnerOracle oracle_{&probers_};
};

}  // namespace

Result<std::vector<Tuple>> OnlineUnionSampler::SampleFreshParallel(
    size_t n, uint64_t seed) {
  ParallelUnionExecutor::Options exec_options;
  exec_options.num_threads = options_.num_threads;
  exec_options.batch_size = options_.batch_size;
  ParallelUnionExecutor executor(exec_options);
  const size_t workers = executor.EffectiveThreads(n);
  const size_t num_batches =
      (n + options_.batch_size - 1) / options_.batch_size;

  // Frozen selection weights: current cover estimates minus abandoned
  // joins. Workers never write these.
  std::vector<double> weights = estimates_.cover_sizes;
  for (size_t j = 0; j < weights.size(); ++j) {
    if (disabled_[j]) weights[j] = 0.0;
  }

  auto build_wander =
      [&]() -> Result<std::vector<std::unique_ptr<WanderJoinSampler>>> {
    std::vector<std::unique_ptr<WanderJoinSampler>> wander;
    wander.reserve(joins_.size());
    for (size_t j = 0; j < joins_.size(); ++j) {
      auto sampler =
          options_.wander_factory
              ? options_.wander_factory(static_cast<int>(j))
              : WanderJoinSampler::Create(joins_[j],
                                          options_.index_cache.get());
      if (!sampler.ok()) return sampler.status();
      wander.push_back(std::move(*sampler));
    }
    return wander;
  };

  // Viability pre-pass on the calling thread. Batches are stateless, so a
  // join whose estimated cover is empty in reality would otherwise be
  // re-discovered — at full max_draws_per_round cost — by every batch
  // that selects it. (Shrinking the per-batch budget instead would
  // spuriously abandon sparse-but-live covers the sequential path samples
  // fine.) Each enabled join must yield one owned tuple within the
  // ordinary round budget or it is disabled before the fan-out, paying
  // for dead covers exactly once. The probe draws from the substream one
  // past the last batch index, so batch RNGs are untouched and the
  // discovered set is thread-count independent.
  OnlineUnionSampleStats probe_stats;
  {
    auto wander = build_wander();
    if (!wander.ok()) return wander.status();
    std::vector<uint8_t> probe_abandoned(joins_.size(), 0);
    FreshWalkBatchSampler probe(std::move(*wander), probers_, weights,
                                estimates_.join_sizes,
                                options_.max_draws_per_round, &probe_stats,
                                &probe_abandoned);
    Rng probe_rng = Rng(seed).Split(num_batches);
    std::vector<Tuple> scratch;  // probe accepts are discarded
    double remaining = 0.0;
    for (size_t j = 0; j < joins_.size(); ++j) {
      if (weights[j] <= 0.0) continue;
      ++probe_stats.rounds;
      if (probe.RunRound(static_cast<int>(j), &scratch, probe_rng) == 0) {
        ++probe_stats.abandoned_rounds;
        weights[j] = 0.0;
        disabled_[j] = true;
      }
      remaining += weights[j];
    }
    if (remaining <= 0.0) {
      return Status::Internal(
          "every join's cover was abandoned; warm-up estimates are "
          "inconsistent with the data");
    }
    // The probe's accepted walks were discarded, so they must not count
    // as result tuples; the time they took is reclassified as rejected
    // work (draws not ending in a delivered tuple).
    probe_stats.rejected_seconds += probe_stats.accepted_seconds;
    probe_stats.accepted_seconds = 0.0;
    probe_stats.accepted = 0;
    probe_stats.fresh_accepted = 0;
  }

  // Per-worker stats and abandonment reports live in caller-owned slots
  // so the online-specific counters survive the executor (which only
  // merges the base struct, and is handed no stats sink here to avoid
  // double counting). Worker-reported abandonment (rare after the
  // pre-pass: a live-but-sparse cover exhausting a round budget) is
  // folded into disabled_ after the fan-out, mirroring the sequential
  // path's persistent disabling without letting it alter batch contents.
  std::vector<std::vector<uint8_t>> worker_abandoned(
      workers, std::vector<uint8_t>(joins_.size(), 0));
  std::vector<OnlineUnionSampleStats> worker_stats(workers);
  auto factory = [&](size_t worker) -> Result<std::unique_ptr<BatchSampler>> {
    if (worker >= workers) {
      return Status::Internal("worker index out of range");
    }
    auto wander = build_wander();
    if (!wander.ok()) return wander.status();
    return std::unique_ptr<BatchSampler>(new FreshWalkBatchSampler(
        std::move(*wander), probers_, weights, estimates_.join_sizes,
        options_.max_draws_per_round, &worker_stats[worker],
        &worker_abandoned[worker]));
  };

  // The executor gets its own scratch stats: its merge would fold each
  // worker's BASE counters in, but those arrive through worker_stats
  // below (with the online-only extension counters the executor cannot
  // see), so only the executor-level fields — batches, workers, clip
  // counts, wall time — are taken from the scratch block.
  UnionSampleStats exec_stats;
  auto result = executor.Execute(n, seed, factory, &exec_stats);
  if (!result.ok()) return result.status();

  for (const auto& mask : worker_abandoned) {
    for (size_t j = 0; j < joins_.size(); ++j) {
      if (mask[j]) disabled_[j] = true;
    }
  }
  SUJ_RETURN_NOT_OK(stats_.MergeFrom(probe_stats));
  for (const auto& ws : worker_stats) {
    SUJ_RETURN_NOT_OK(stats_.MergeFrom(ws));
  }
  stats_.parallel_batches += exec_stats.parallel_batches;
  stats_.parallel_workers += exec_stats.parallel_workers;
  stats_.parallel_clipped += exec_stats.parallel_clipped;
  stats_.parallel_seconds += exec_stats.parallel_seconds;
  return result;
}

Result<std::vector<Tuple>> OnlineUnionSampler::Sample(size_t n, Rng& rng) {
  std::vector<Tuple> result;
  std::vector<std::string> keys;
  std::vector<int> owners;
  std::vector<double> probs;
  result.reserve(n);

  // Accepts `instances` copies of `t` into the result, subject to the
  // union-level ownership check. Returns the number of copies added
  // (0 == cover rejection).
  auto union_accept = [&](Tuple t, int j, uint64_t instances,
                          Rng& r) -> Result<uint64_t> {
    std::string key = t.Encode();
    if (options_.mode == UnionSampler::Mode::kMembershipOracle) {
      // f(u): the first join containing the value (probed exactly, cached).
      (void)r;
      if (oracle_.Owner(key, t) != j) {
        ++stats_.rejected_cover;
        return 0;
      }
    } else {
      auto it = owner_.find(key);
      if (it != owner_.end() && it->second < j) {
        ++stats_.rejected_cover;
        return 0;
      }
      if (it != owner_.end() && it->second > j) {
        ++stats_.revisions;
        size_t before = result.size();
        for (size_t k = result.size(); k-- > 0;) {
          if (keys[k] == key) {
            result.erase(result.begin() + k);
            keys.erase(keys.begin() + k);
            owners.erase(owners.begin() + k);
            probs.erase(probs.begin() + k);
          }
        }
        stats_.removed_by_revision += before - result.size();
        it->second = j;
      } else if (it == owner_.end()) {
        owner_.emplace(key, j);
      }
    }
    double p = TupleProbability(j);
    for (uint64_t c = 0; c < instances; ++c) {
      result.push_back(t);
      keys.push_back(key);
      owners.push_back(j);
      probs.push_back(p);
    }
    stats_.accepted += instances;
    return instances;
  };

  WeightedSelector selector;
  bool selector_stale = true;
  while (result.size() < n) {
    if (options_.index_cache != nullptr && ParallelTailReady()) {
      // Everything order-sensitive (pool reuse, backtracking) is done;
      // the remaining fresh walks fan out. One rng draw fixes the
      // substream seed, so the full sequence stays a function of the
      // caller's RNG state and n alone — thread count never enters.
      auto tail = SampleFreshParallel(n - result.size(), rng.Next());
      if (!tail.ok()) return tail.status();
      for (auto& t : *tail) result.push_back(std::move(t));
      break;
    }
    ++stats_.rounds;
    // Alias-backed selection, rebuilt only when the weights actually
    // changed: a Backtrack replaced the estimates or a round abandoned a
    // join. Every other round draws in O(1) instead of re-scanning the
    // cover sizes.
    if (selector_stale) {
      std::vector<double> weights = estimates_.cover_sizes;
      for (size_t i = 0; i < weights.size(); ++i) {
        if (disabled_[i]) weights[i] = 0.0;
      }
      auto built = WeightedSelector::Build(std::move(weights));
      if (!built.ok()) {
        return Status::Internal(
            "every join's cover was abandoned; warm-up estimates are "
            "inconsistent with the data");
      }
      selector = std::move(*built);
      selector_stale = false;
    }
    int j = static_cast<int>(selector.Sample(rng));
    double join_size = std::max(estimates_.join_sizes[j], 1e-12);

    bool round_done = false;
    for (uint64_t draw = 0;
         draw < options_.max_draws_per_round && !round_done; ++draw) {
      auto start = Clock::now();
      ++stats_.join_draws;
      ++recorded_since_backtrack_;

      if (options_.enable_reuse && !pools_[j].empty()) {
        // ---- Reuse phase: draw from the warm-up pool, no walk needed ----
        ++stats_.reuse_draws;
        size_t pick = rng.UniformInt(pools_[j].size());
        PoolEntry entry = std::move(pools_[j][pick]);
        pools_[j][pick] = std::move(pools_[j].back());
        pools_[j].pop_back();

        // Expected pool multiplicity of a tuple is proportional to its walk
        // probability; accepting with p_min/p(t) equalizes emission rates
        // (see header). The entry is consumed either way.
        if (!rng.Bernoulli(pool_min_p_[j] / entry.probability)) {
          double dt = SecondsSince(start);
          stats_.reuse_seconds += dt;
          stats_.rejected_seconds += dt;
          continue;
        }
        auto added = union_accept(std::move(entry.tuple), j, 1, rng);
        if (!added.ok()) return added.status();
        double dt = SecondsSince(start);
        stats_.reuse_seconds += dt;
        if (added.value() > 0) {
          stats_.reuse_accepted += added.value();
          stats_.accepted_seconds += dt;
          round_done = true;
        } else {
          stats_.rejected_seconds += dt;
        }
      } else {
        // ---- Regular phase: fresh wander-join walk ----
        ++stats_.fresh_walks;
        auto outcome = walker_->WalkAndRecord(j, rng);
        if (!outcome.ok()) return outcome.status();
        if (!outcome->success) {
          double dt = SecondsSince(start);
          stats_.regular_seconds += dt;
          stats_.rejected_seconds += dt;
          continue;
        }
        uint64_t instances =
            WalkInstances(outcome->probability, join_size, rng);
        if (instances == 0) {
          double dt = SecondsSince(start);
          stats_.regular_seconds += dt;
          stats_.rejected_seconds += dt;
          continue;
        }
        auto added =
            union_accept(std::move(outcome->tuple), j, instances, rng);
        if (!added.ok()) return added.status();
        double dt = SecondsSince(start);
        stats_.regular_seconds += dt;
        if (added.value() > 0) {
          stats_.fresh_accepted += added.value();
          stats_.accepted_seconds += dt;
          round_done = true;
        } else {
          stats_.rejected_seconds += dt;
        }
      }

      // Backtracking with parameter update (Algorithm 2, lines 18-20).
      if (options_.backtrack_interval > 0 && backtracking_active_ &&
          recorded_since_backtrack_ >= options_.backtrack_interval) {
        recorded_since_backtrack_ = 0;
        SUJ_RETURN_NOT_OK(Backtrack(&result, &keys, &owners, &probs, rng));
        join_size = std::max(estimates_.join_sizes[j], 1e-12);
        selector_stale = true;  // cover sizes were re-estimated
      }
    }
    if (!round_done) {
      // No owned tuple within the budget: the join's real cover is
      // (effectively) empty; exclude it from further selection.
      ++stats_.abandoned_rounds;
      disabled_[j] = true;
      selector_stale = true;
    }
  }
  result.resize(n);  // multi-instance accepts can overshoot
  return result;
}

}  // namespace suj
