#include "core/k_overlap.h"

#include <algorithm>

namespace suj {

double KOverlapTable::UnionSize() const {
  double total = 0.0;
  for (int j = 0; j < num_joins; ++j) {
    for (int k = 1; k <= num_joins; ++k) {
      total += a[j][k] / static_cast<double>(k);
    }
  }
  return total;
}

Result<KOverlapTable> SolveKOverlaps(
    int num_joins, const std::function<Result<double>(SubsetMask)>& overlap) {
  if (num_joins < 1 || num_joins > 63) {
    return Status::InvalidArgument("num_joins must be in [1, 63]");
  }
  const int n = num_joins;
  KOverlapTable table;
  table.num_joins = n;
  table.a.assign(n, std::vector<double>(n + 1, 0.0));

  // Full-set overlap |O_S| seeds |A^n_j| for every j.
  auto full = overlap(FullMask(n));
  if (!full.ok()) return full.status();
  for (int j = 0; j < n; ++j) {
    table.a[j][n] = std::max(0.0, full.value());
  }

  // Top-down recurrence: k = n-1 .. 1.
  for (int k = n - 1; k >= 1; --k) {
    for (int j = 0; j < n; ++j) {
      double sum = 0.0;
      for (SubsetMask mask : SubsetsOfSizeContaining(n, k, j)) {
        auto o = overlap(mask);
        if (!o.ok()) return o.status();
        sum += o.value();
      }
      double correction = 0.0;
      for (int r = k + 1; r <= n; ++r) {
        correction += Binomial(r - 1, k - 1) * table.a[j][r];
      }
      table.a[j][k] = std::max(0.0, sum - correction);
    }
  }
  return table;
}

}  // namespace suj
