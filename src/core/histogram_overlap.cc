#include "core/histogram_overlap.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "join/join_size_bound.h"

namespace suj {

namespace {

// Min over the shared attributes of consecutive path relations of the max
// degree in `deg_side` (the relation whose histogram bounds the matches).
Result<double> EdgeMaxDegree(const RelationPtr& probe_side,
                             const RelationPtr& key_side,
                             HistogramCatalog* histograms) {
  std::vector<std::string> shared =
      probe_side->schema().CommonFields(key_side->schema());
  if (shared.empty()) {
    return Status::Internal("path relations share no attribute");
  }
  double best = std::numeric_limits<double>::infinity();
  for (const auto& attr : shared) {
    auto hist = histograms->GetOrBuild(probe_side, attr);
    if (!hist.ok()) return hist.status();
    best = std::min(best, static_cast<double>((*hist)->MaxDegree()));
  }
  return best;
}

}  // namespace

Result<std::unique_ptr<HistogramOverlapEstimator>>
HistogramOverlapEstimator::Create(std::vector<JoinSpecPtr> joins,
                                  HistogramCatalog* histograms,
                                  Options options) {
  SUJ_RETURN_NOT_OK(ValidateUnionCompatible(joins));
  if (histograms == nullptr) {
    return Status::InvalidArgument("null histogram catalog");
  }
  if (joins.size() > 63) {
    return Status::InvalidArgument("at most 63 joins supported");
  }

  auto est = std::unique_ptr<HistogramOverlapEstimator>(
      new HistogramOverlapEstimator(std::move(joins), std::move(options)));

  // Standard template: explicit or score-selected (§8.1).
  if (!est->options_.template_attrs.empty()) {
    est->template_attrs_ = est->options_.template_attrs;
  } else {
    auto tmpl = TemplateSelector::SelectTemplate(
        est->joins_, est->options_.template_options);
    if (!tmpl.ok()) return tmpl.status();
    est->template_attrs_ = std::move(tmpl).value();
  }

  // Split every join against the template and precompute link statistics.
  for (const auto& join : est->joins_) {
    auto chain = SplitJoinToChain(join, est->template_attrs_);
    if (!chain.ok()) return chain.status();

    std::vector<LinkStats> link_stats;
    for (const auto& link : chain->links) {
      LinkStats ls;
      ls.fake_join_to_next = link.fake_join_to_next;
      if (!link.is_virtual()) {
        const RelationPtr& src = join->relation(link.source_relation);
        auto left = histograms->GetOrBuild(src, link.attr_left);
        if (!left.ok()) return left.status();
        auto right = histograms->GetOrBuild(src, link.attr_right);
        if (!right.ok()) return right.status();
        ls.left = std::move(left).value();
        ls.right = std::move(right).value();
        ls.row_bound = static_cast<double>(src->num_rows());
      } else {
        // Virtual link over path r_0..r_L: statistics come from the
        // endpoint relations, inflated by the product of max degrees along
        // the path (§8.1's sub-join estimation).
        const auto& path = link.path;
        const RelationPtr& first = join->relation(path.front());
        const RelationPtr& last = join->relation(path.back());
        auto left = histograms->GetOrBuild(first, link.attr_left);
        if (!left.ok()) return left.status();
        auto right = histograms->GetOrBuild(last, link.attr_right);
        if (!right.ok()) return right.status();
        ls.left = std::move(left).value();
        ls.right = std::move(right).value();
        for (size_t k = 0; k + 1 < path.size(); ++k) {
          // Forward direction: probing r_{k+1} from r_k.
          auto fwd = EdgeMaxDegree(join->relation(path[k + 1]),
                                   join->relation(path[k]), histograms);
          if (!fwd.ok()) return fwd.status();
          ls.mult_left *= fwd.value();
          // Backward direction: probing r_k from r_{k+1}.
          auto bwd = EdgeMaxDegree(join->relation(path[k]),
                                   join->relation(path[k + 1]), histograms);
          if (!bwd.ok()) return bwd.status();
          ls.mult_right *= bwd.value();
        }
        ls.row_bound =
            static_cast<double>(first->num_rows()) * ls.mult_left;
      }
      link_stats.push_back(std::move(ls));
    }
    est->stats_.push_back(std::move(link_stats));
    est->chains_.push_back(std::move(chain).value());

    // Singleton bound: extended Olken over the original join, histograms
    // only (tighter than the split chain; no splitting loss).
    auto bound = ComputeOlkenBoundFromHistograms(join, histograms);
    if (!bound.ok()) return bound.status();
    est->join_size_bounds_.push_back(bound->bound);
  }
  return est;
}

double HistogramOverlapEstimator::BoundFromStart(
    const std::vector<int>& members, int start) const {
  const int num_links = static_cast<int>(stats_[members[0]].size());

  // Degree statistic for the M terms.
  auto deg_stat = [&](const ColumnHistogramPtr& hist) {
    return options_.use_avg_degree ? hist->AvgDegree()
                                   : static_cast<double>(hist->MaxDegree());
  };

  // K(1): value-level comparison at the shared attribute between links
  // `start` and `start + 1` (or the single link for 1-link chains).
  double k = 0.0;
  if (num_links == 1) {
    // One sub-relation: bound agreement on its right attribute value-wise.
    const ColumnHistogram* smallest = nullptr;
    int smallest_join = -1;
    for (int j : members) {
      const auto& h = stats_[j][0].right;
      if (smallest == nullptr || h->NumDistinct() < smallest->NumDistinct()) {
        smallest = h.get();
        smallest_join = j;
      }
    }
    for (const auto& [v, d] : smallest->counts()) {
      double best = static_cast<double>(d) * stats_[smallest_join][0].mult_right;
      for (int j : members) {
        if (j == smallest_join) continue;
        double dj = static_cast<double>(stats_[j][0].right->Degree(v)) *
                    stats_[j][0].mult_right;
        best = std::min(best, dj);
        if (best == 0.0) break;
      }
      k += best;
    }
    return k;
  }

  // f_j(v): joined pairs of links (start, start+1) sharing value v.
  auto pair_degree = [&](int j, const Value& v) -> double {
    const LinkStats& a = stats_[j][start];
    const LinkStats& b = stats_[j][start + 1];
    double da = static_cast<double>(a.right->Degree(v)) * a.mult_right;
    if (da == 0.0) return 0.0;
    if (a.fake_join_to_next) return da;  // row-identity join
    double db = static_cast<double>(b.left->Degree(v)) * b.mult_left;
    return da * db;
  };

  // Iterate values of the member with the fewest distinct values.
  int smallest_join = members[0];
  for (int j : members) {
    if (stats_[j][start].right->NumDistinct() <
        stats_[smallest_join][start].right->NumDistinct()) {
      smallest_join = j;
    }
  }
  for (const auto& [v, d] : stats_[smallest_join][start].right->counts()) {
    (void)d;
    double best = pair_degree(smallest_join, v);
    for (int j : members) {
      if (best == 0.0) break;
      if (j == smallest_join) continue;
      best = std::min(best, pair_degree(j, v));
    }
    k += best;
  }

  // Forward extension: joins between link i and i+1, i > start.
  for (int i = start + 1; i + 1 <= num_links - 1 && k > 0; ++i) {
    double m = std::numeric_limits<double>::infinity();
    for (int j : members) {
      const LinkStats& cur = stats_[j][i];
      const LinkStats& next = stats_[j][i + 1];
      double mj = cur.fake_join_to_next
                      ? 1.0
                      : deg_stat(next.left) * next.mult_left;
      m = std::min(m, mj);
    }
    k *= m;
  }
  // Backward extension: joins between link i and i+1, i < start.
  for (int i = start - 1; i >= 0 && k > 0; --i) {
    double m = std::numeric_limits<double>::infinity();
    for (int j : members) {
      const LinkStats& cur = stats_[j][i];
      double mj = cur.fake_join_to_next
                      ? 1.0
                      : deg_stat(cur.right) * cur.mult_right;
      m = std::min(m, mj);
    }
    k *= m;
  }
  return k;
}

Result<double> HistogramOverlapEstimator::EstimateOverlap(SubsetMask subset) {
  if (subset == 0 || subset >= (1ULL << joins_.size())) {
    return Status::InvalidArgument("subset mask out of range");
  }
  std::vector<int> members = MaskToIndices(subset);
  if (members.size() == 1) {
    return join_size_bounds_[members[0]];
  }

  const int num_links = static_cast<int>(stats_[members[0]].size());
  double bound;
  if (num_links == 0) {
    // Single-attribute template: overlap bounded by the smallest join.
    bound = std::numeric_limits<double>::infinity();
  } else if (options_.best_rotation) {
    bound = std::numeric_limits<double>::infinity();
    const int max_start = num_links == 1 ? 1 : num_links - 1;
    for (int start = 0; start < max_start; ++start) {
      bound = std::min(bound, BoundFromStart(members, start));
    }
  } else {
    bound = BoundFromStart(members, 0);
  }

  if (options_.cap_with_join_size || !std::isfinite(bound)) {
    for (int j : members) {
      bound = std::min(bound, join_size_bounds_[j]);
    }
  }
  return bound;
}

}  // namespace suj
