// k-overlap decomposition (§4, Theorem 3) and the union-size formula (Eq 1).
//
// A^k_j is the set of tuples of join J_j that appear in exactly k-1 other
// joins. The A^k_j are disjoint within a join, and every union tuple
// appearing in exactly k joins is counted once in each of those k joins'
// A^k sets, so
//     |U| = sum_j sum_k (1/k) |A^k_j|                                (Eq 1)
// Theorem 3 recovers |A^k_j| top-down from the subset overlaps |O_Delta|:
//     |A^n_j| = |O_S|,
//     |A^k_j| = sum_{Delta in P_k, J_j in Delta} |O_Delta|
//               - sum_{r=k+1..n} C(r-1, k-1) |A^r_j|.

#ifndef SUJ_CORE_K_OVERLAP_H_
#define SUJ_CORE_K_OVERLAP_H_

#include <functional>
#include <vector>

#include "common/combinatorics.h"
#include "common/result.h"

namespace suj {

/// \brief The solved |A^k_j| table plus the Eq-1 union size.
struct KOverlapTable {
  int num_joins = 0;
  /// a[j][k] = |A^k_j| for k in [1, n]; a[j][0] is unused.
  std::vector<std::vector<double>> a;

  /// Union size per Eq 1.
  double UnionSize() const;

  /// |A^k_j| accessor (k is 1-based, per the paper).
  double At(int j, int k) const { return a[j][k]; }
};

/// \brief Computes the k-overlap decomposition from an overlap oracle.
///
/// `overlap(mask)` must return |O_mask| (or its estimate) for every
/// non-empty subset mask over `num_joins` joins. With estimated overlaps
/// the recurrence can go slightly negative; values are clamped at 0, which
/// keeps Eq 1 meaningful (the paper's estimators feed this path).
Result<KOverlapTable> SolveKOverlaps(
    int num_joins, const std::function<Result<double>(SubsetMask)>& overlap);

}  // namespace suj

#endif  // SUJ_CORE_K_OVERLAP_H_
