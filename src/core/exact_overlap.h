// ExactOverlapCalculator: ground-truth overlaps via full joins.
//
// Materializes every join once (the expensive FullJoinUnion baseline of §9),
// keeps the encoded result sets, and answers overlap queries by set
// intersection. Used as the reference the approximation methods are judged
// against, and to parameterize samplers in exactness tests.

#ifndef SUJ_CORE_EXACT_OVERLAP_H_
#define SUJ_CORE_EXACT_OVERLAP_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/overlap_estimator.h"
#include "join/full_join.h"

namespace suj {

/// \brief Exact |O_Delta| from materialized join results.
class ExactOverlapCalculator : public OverlapEstimator {
 public:
  /// Executes every join in `joins` (fails if any full join exceeds the
  /// executor's intermediate-row guard).
  static Result<std::unique_ptr<ExactOverlapCalculator>> Create(
      std::vector<JoinSpecPtr> joins, CompositeIndexCache* cache = nullptr);

  /// Epoch refresh: re-executes ONLY the joins whose bit is set in
  /// `affected_mask` (those touching a relation folded by the delta) and
  /// shares the previous calculator's materialized result sets for the
  /// rest. The membership map is rebuilt from the per-join sets (masks can
  /// change even for unaffected joins when an affected join gains/loses a
  /// shared tuple). `joins` must be positionally compatible with
  /// `prev.joins()`.
  static Result<std::unique_ptr<ExactOverlapCalculator>> CreateIncremental(
      std::vector<JoinSpecPtr> joins, const ExactOverlapCalculator& prev,
      SubsetMask affected_mask, CompositeIndexCache* cache = nullptr);

  const std::vector<JoinSpecPtr>& joins() const override { return joins_; }
  Result<double> EstimateOverlap(SubsetMask subset) override;
  bool IsUpperBound() const override { return false; }

  /// Exact size of the set union of all join results.
  uint64_t UnionSize() const { return union_size_; }

  /// Exact size of one join result (distinct tuples).
  uint64_t JoinSize(int join_index) const {
    return join_sets_[join_index]->size();
  }

  /// The distinct encoded tuples of one join (for test cross-checks).
  const std::unordered_set<std::string>& join_set(int join_index) const {
    return *join_sets_[join_index];
  }

  /// For every distinct union tuple, the bitmask of joins containing it.
  const std::unordered_map<std::string, SubsetMask>& membership() const {
    return membership_;
  }

 private:
  explicit ExactOverlapCalculator(std::vector<JoinSpecPtr> joins)
      : joins_(std::move(joins)) {}

  std::vector<JoinSpecPtr> joins_;
  // Shared so an epoch refresh can reuse unaffected joins' sets untouched.
  std::vector<std::shared_ptr<const std::unordered_set<std::string>>>
      join_sets_;
  std::unordered_map<std::string, SubsetMask> membership_;
  uint64_t union_size_ = 0;
};

}  // namespace suj

#endif  // SUJ_CORE_EXACT_OVERLAP_H_
