// OverlapEstimator is a pure interface; this translation unit anchors its
// vtable by hosting the out-of-line key function (the destructor).
#include "core/overlap_estimator.h"

namespace suj {

OverlapEstimator::~OverlapEstimator() = default;

}  // namespace suj
