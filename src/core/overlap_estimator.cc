// OverlapEstimator is a pure interface; this translation unit anchors its
// vtable.
#include "core/overlap_estimator.h"

namespace suj {}  // namespace suj
