// Union sampling (§2, §3, Algorithm 1).
//
// Four samplers, all drawing with replacement:
//  * DisjointUnionSampler  -- Definition 1: select a join proportionally to
//    its size, sample it; duplicates across joins are legitimate.
//  * BernoulliUnionSampler -- the "union trick" baseline of §3: every join
//    fires independently with probability |J_j|/|U| per round; a fired
//    join's sample is kept only when the join is the FIRST join containing
//    the tuple's value.
//  * UnionSampler          -- Algorithm 1 (non-Bernoulli join selection):
//    joins are selected with the cover probabilities |J'_j|/|U|; a sample
//    from J_j is kept only if the cover assigns its value to J_j, and the
//    sampler retries the SAME join until it yields a kept tuple (that is
//    what makes each round uniform on J'_j). Two ownership modes:
//      - kMembershipOracle (centralized): ownership f(u) = first join
//        containing u, checked exactly with hash probes;
//      - kRevision (decentralized, the paper's Algorithm 1): ownership is
//        learned on the fly; later samples from an earlier join trigger a
//        revision that re-assigns the value and purges stale copies.
//  * NaiveUnionOfSamples   -- Example 2's broken strawman (set union of
//    per-join uniform samples), kept as a negative baseline.
//
// Per-phase wall-clock and rejection accounting feed the Fig 5 breakdowns.

#ifndef SUJ_CORE_UNION_SAMPLER_H_
#define SUJ_CORE_UNION_SAMPLER_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/alias_table.h"
#include "core/union_size_model.h"
#include "join/join_sampler.h"
#include "join/membership.h"

namespace suj {

class RevisionState;

/// Counters + phase timings for the union-level sampling loop.
struct UnionSampleStats {
  /// Identity of the prepared plan these stats were produced under
  /// (0 = unbound, e.g. ad-hoc library use). Stamped via
  /// UnionSampler::Options::plan_id / OnlineUnionSampler::Options::plan_id
  /// and by the service layer, and checked by MergeFrom: folding stats
  /// from two different plans together silently corrupts per-query
  /// accounting, so mismatched merges fail instead.
  uint64_t plan_id = 0;
  uint64_t rounds = 0;              ///< join selections
  uint64_t join_draws = 0;          ///< join-sampler attempts (cost psi)
  uint64_t accepted = 0;            ///< tuples added to the result
  uint64_t rejected_cover = 0;      ///< samples outside the join's cover
  uint64_t revisions = 0;           ///< ownership re-assignments
  uint64_t removed_by_revision = 0; ///< result tuples purged by revisions
  /// Rounds abandoned because the selected join produced no owned tuple
  /// within the draw budget. The join's selection weight is zeroed: its
  /// estimated cover was (near-)empty in reality, so continuing to select
  /// it would only burn draws. Non-zero counts indicate loose warm-up
  /// estimates.
  uint64_t abandoned_rounds = 0;
  double accepted_seconds = 0.0;    ///< time in rounds ending in an accept
  double rejected_seconds = 0.0;    ///< time spent on rejected draws
  // Parallel-executor accounting (zero when sampling ran sequentially).
  uint64_t parallel_batches = 0;    ///< batches fanned out by the executor
  /// Worker contexts constructed — a count of contexts, not of fan-outs.
  /// The per-call parallel modes build their contexts once per Sample call
  /// (reusing one WorkerContextPool across every epoch of the call), so a
  /// call at num_threads=T adds at most T here regardless of epoch count.
  /// The resumable path is tighter still: its pool is carried in the
  /// RevisionState, so a whole session adds at most T no matter how many
  /// Sample calls it spans; tests assert both via factory-invocation
  /// counters.
  uint64_t parallel_workers = 0;
  /// Accepted tuples clipped at batch boundaries (multi-instance
  /// overshoot; the sequential path clips only once per call). Non-
  /// negligible values signal badly underestimated join sizes.
  uint64_t parallel_clipped = 0;
  double parallel_seconds = 0.0;    ///< executor wall-clock (not CPU) time
  // Parallel revision-mode accounting (zero for oracle mode and for the
  // sequential revision loop).
  uint64_t revision_epochs = 0;     ///< epoch fan-out + reconcile passes
  /// Claims dropped by reconciliation because an earlier join claimed the
  /// value in the same epoch (the sequential loop would have rejected and
  /// re-drawn them; the epoch driver tops the shortfall up instead).
  uint64_t reconcile_dropped = 0;
  double reconciliation_seconds = 0.0;  ///< wall-clock in Reconcile passes
  /// High-water mark of the finalized-but-undelivered surplus a resumable
  /// revision session parked in its RevisionState buffer (tuples generated
  /// past the calls' demand by the fixed epoch ramp). Bounded by
  /// Options::max_revision_surplus; merged via max, not sum.
  uint64_t revision_surplus_high_water = 0;

  /// Folds another stats block (e.g. one worker's) into this one: counters
  /// and per-phase times add; parallel_workers adds so a merge over workers
  /// counts contexts; revision_surplus_high_water merges via max (it is a
  /// level, not a flow). Fails with InvalidArgument when both sides carry
  /// different non-zero plan ids (stats of different queries must not be
  /// pooled); a zero side adopts the other's id.
  Status MergeFrom(const UnionSampleStats& other);

  double CoverRejectionRatio() const {
    uint64_t total = accepted + rejected_cover;
    return total == 0 ? 0.0
                      : static_cast<double>(rejected_cover) /
                            static_cast<double>(total);
  }
};

/// \brief Algorithm 1: uniform i.i.d. sampling over the set union of joins.
class UnionSampler {
 public:
  enum class Mode { kRevision, kMembershipOracle };

  /// Builds a fresh set of per-join samplers for one parallel worker.
  /// Called once per worker on the calling thread before the pool starts
  /// (so it may share non-thread-safe index caches); the samplers it
  /// returns are used by exactly one worker.
  using JoinSamplerFactory =
      std::function<Result<std::vector<std::unique_ptr<JoinSampler>>>()>;

  struct Options {
    Mode mode = Mode::kRevision;
    /// Retry cap for one round. When a round exhausts the budget, the
    /// selected join's estimated cover claimed tuples the join cannot
    /// produce (it is fully covered by earlier joins); the round is
    /// abandoned and the join's selection weight zeroed.
    uint64_t max_draws_per_round = 50000;
    /// Worker threads for the batched executor path (engaged by setting
    /// `sampler_factory`); 0 = hardware concurrency. Both modes fan out:
    /// kMembershipOracle ownership is the pure function "first join
    /// containing the value", so batches from independent RNG substreams
    /// concatenate to exactly the sequential sampler's distribution;
    /// kRevision runs the epoch-reconciled protocol (core/ownership_map.h)
    /// — workers sample against an immutable snapshot of the learned
    /// cover, journal tentative claims per batch, and a deterministic
    /// reconciliation pass between epochs replays the claims in global
    /// round order, applying revisions/purges exactly as the sequential
    /// protocol would and re-requesting any reconciliation shortfall in
    /// the next epoch.
    size_t num_threads = 1;
    /// Tuples per parallel batch. The sample sequence is a function of
    /// (seed, batch index) only — never of the claiming thread — so the
    /// same seed and n give a byte-identical sequence for EVERY
    /// num_threads, including 1 (one worker draining all batches).
    size_t batch_size = 64;
    /// Setting this engages the batched executor path for Sample(); the
    /// factory builds each worker's private sampler set. Leave null for
    /// the classic sequential loop.
    JoinSamplerFactory sampler_factory;
    /// Prepared-plan identity stamped onto stats() (see
    /// UnionSampleStats::plan_id); 0 for ad-hoc use.
    uint64_t plan_id = 0;
    /// Upper bound (in tuples) on the finalized surplus a resumable
    /// revision session may park in its RevisionState buffer. The epoch
    /// ramp is a pure function of the options (never of the call
    /// pattern), so the bound is enforced by lowering the ramp's cap
    /// until the largest epoch fits: effectively
    /// batch_size << cap <= max_revision_surplus, floored at one batch
    /// (generation cannot go below a batch, so a cap smaller than
    /// batch_size still admits a surplus of batch_size - 1). 0 keeps the
    /// default ramp cap (batch_size << 4). Chunk-safe: every chunking of
    /// a session sees the same epoch schedule.
    size_t max_revision_surplus = 0;
  };

  /// \param joins      union-compatible joins J_0..J_{n-1} (cover order).
  /// \param samplers   one uniform sampler per join (EW or EO). MUST be
  ///                   empty when Options::sampler_factory is set — the
  ///                   executor path builds per-worker sets from the
  ///                   factory and would never touch these.
  /// \param estimates  warm-up output (cover sizes drive join selection).
  /// \param probers    membership oracles; required for kMembershipOracle.
  static Result<std::unique_ptr<UnionSampler>> Create(
      std::vector<JoinSpecPtr> joins,
      std::vector<std::unique_ptr<JoinSampler>> samplers,
      UnionEstimates estimates, std::vector<JoinMembershipProberPtr> probers,
      Options options);
  static Result<std::unique_ptr<UnionSampler>> Create(
      std::vector<JoinSpecPtr> joins,
      std::vector<std::unique_ptr<JoinSampler>> samplers,
      UnionEstimates estimates,
      std::vector<JoinMembershipProberPtr> probers = {}) {
    return Create(std::move(joins), std::move(samplers), std::move(estimates),
                  std::move(probers), Options());
  }

  /// Draws `n` tuples with replacement, each (with exact parameters)
  /// uniform over the set union. Under the revision mode the result can
  /// additionally shrink mid-run; the loop continues until `n` tuples
  /// stand.
  ///
  /// Resumable: repeated Sample calls on one instance continue the
  /// protocol rather than restarting it — stats accumulate and joins
  /// whose rounds were abandoned (estimated cover empty in reality) stay
  /// excluded from selection in later calls instead of burning a fresh
  /// draw budget per call. Service sessions rely on this to serve many
  /// requests from one long-lived sampler. (On the batched executor path
  /// — both modes — a cover abandoned mid-call takes effect from the
  /// NEXT call: within the discovering call every batch keeps the
  /// call-start exclusion set, so batch contents never depend on
  /// scheduling. This boundary is asserted: the fan-out SUJ_CHECKs that
  /// the exclusion set is untouched until the post-fan-out fold.)
  ///
  /// With Options::sampler_factory set the draw fans out over the parallel
  /// executor: `rng` is consumed for exactly one value (the substream
  /// seed), so the output is a deterministic function of the caller's RNG
  /// state and n, independent of the thread count — in BOTH modes. The
  /// revision-mode fan-out keeps a per-call OwnershipMap, mirroring the
  /// sequential loop's per-call revision state (ownership learned in one
  /// call is not carried into later calls, whose delivered tuples are
  /// beyond purging anyway); abandonment still carries over. Join-level
  /// stats then accrue in the per-worker samplers, not in the ones passed
  /// to Create (AggregatedJoinStats() reports only sequential-path work).
  Result<std::vector<Tuple>> Sample(size_t n, Rng& rng);

  /// Resumable revision-mode sampling (requires Mode::kRevision with
  /// Options::sampler_factory set): continues the epoch-reconciled
  /// protocol carried by `state` instead of rebuilding it per call. The
  /// learned cover, epoch ramp, and epoch-seed stream all persist in the
  /// state, so splitting n draws across any number of calls delivers the
  /// byte-identical sequence a single n-draw call would — at every
  /// num_threads, including 1 (see core/revision_state.h for the
  /// deterministic-stream contract). `rng` is consumed for exactly ONE
  /// value over the state's whole lifetime (the epoch-seed stream seed,
  /// drawn when `state` initializes); continuation calls leave it
  /// untouched. A state binds to the first sampler it is used with;
  /// passing it to another sampler fails with InvalidArgument.
  ///
  /// Worker contexts come from one WorkerContextPool built at most once
  /// per STATE (a session served entirely from the state's buffer builds
  /// none): the pool is carried inside the RevisionState and reused by
  /// every epoch of every resumed call, so the sampler factory runs
  /// exactly pool-width times over a whole session. Cover abandonment
  /// discovered in an epoch folds into the state's weights AND this
  /// sampler's persistent exclusion set between epochs — a tighter,
  /// chunking-independent version of the per-call paths' next-call
  /// boundary; the fan-out itself still never touches the exclusion set
  /// (SUJ_CHECK-asserted per epoch). Interleaving resumable and
  /// non-resumable Sample calls on one sampler is memory-safe and
  /// deterministic for a fixed interleaving, but the non-resumable calls
  /// see abandonment at whatever epoch boundaries preceded them.
  Result<std::vector<Tuple>> Sample(size_t n, Rng& rng, RevisionState& state);

  const UnionSampleStats& stats() const { return stats_; }
  void ResetStats() {
    stats_ = UnionSampleStats();
    stats_.plan_id = options_.plan_id;
  }
  const UnionEstimates& estimates() const { return estimates_; }
  const std::vector<JoinSpecPtr>& joins() const { return joins_; }

  /// Aggregated join-level sampler statistics (rejections inside EW/EO).
  JoinSampleStats AggregatedJoinStats() const;

  // Not copyable or movable: oracle_ points into this object's probers_.
  UnionSampler(const UnionSampler&) = delete;
  UnionSampler& operator=(const UnionSampler&) = delete;

 private:
  UnionSampler(std::vector<JoinSpecPtr> joins,
               std::vector<std::unique_ptr<JoinSampler>> samplers,
               UnionEstimates estimates,
               std::vector<JoinMembershipProberPtr> probers, Options options)
      : joins_(std::move(joins)),
        samplers_(std::move(samplers)),
        estimates_(std::move(estimates)),
        probers_(std::move(probers)),
        options_(options),
        disabled_(joins_.size(), false) {
    stats_.plan_id = options_.plan_id;
  }

  /// Parallel fan-out of Sample, oracle mode: one batched fan-out.
  Result<std::vector<Tuple>> SampleParallel(size_t n, uint64_t seed);

  /// Parallel fan-out of Sample, revision mode: epoch-reconciled
  /// ownership (core/ownership_map.h). Fans out batches against the
  /// reconciled-ownership snapshot, reconciles claims in global round
  /// order, and repeats until n tuples stand. Per-call state, mirroring
  /// the sequential loop; sessions use the RevisionState overload.
  Result<std::vector<Tuple>> SampleRevisionParallel(size_t n, uint64_t seed);

  /// The resumable body of Sample(n, rng, state): one epoch-driver turn
  /// over the state's carried protocol (see core/revision_state.h).
  Result<std::vector<Tuple>> SampleRevisionResumable(size_t n, Rng& rng,
                                                     RevisionState& state);

  std::vector<JoinSpecPtr> joins_;
  std::vector<std::unique_ptr<JoinSampler>> samplers_;
  UnionEstimates estimates_;
  std::vector<JoinMembershipProberPtr> probers_;
  Options options_;
  UnionSampleStats stats_;
  /// Joins whose rounds were abandoned (estimated cover empty in
  /// reality); persisted across Sample calls so resumed sessions do not
  /// rediscover dead covers at full draw-budget cost.
  std::vector<bool> disabled_;
  /// f(u) = first containing join (oracle mode), memoized over probers_.
  OwnerOracle oracle_{&probers_};
};

/// \brief Definition 1: sampling the disjoint union (duplicates retained).
class DisjointUnionSampler {
 public:
  static Result<std::unique_ptr<DisjointUnionSampler>> Create(
      std::vector<JoinSpecPtr> joins,
      std::vector<std::unique_ptr<JoinSampler>> samplers,
      std::vector<double> join_sizes);

  Result<std::vector<Tuple>> Sample(size_t n, Rng& rng);

 private:
  DisjointUnionSampler(std::vector<JoinSpecPtr> joins,
                       std::vector<std::unique_ptr<JoinSampler>> samplers,
                       std::vector<double> join_sizes, AliasTable alias)
      : joins_(std::move(joins)),
        samplers_(std::move(samplers)),
        join_sizes_(std::move(join_sizes)),
        alias_(std::move(alias)) {}

  std::vector<JoinSpecPtr> joins_;
  std::vector<std::unique_ptr<JoinSampler>> samplers_;
  std::vector<double> join_sizes_;
  /// Join sizes never change after Create, so selection is one O(1)
  /// prepare-time alias draw per round.
  AliasTable alias_;
};

/// \brief §3's Bernoulli "union trick" baseline.
class BernoulliUnionSampler {
 public:
  static Result<std::unique_ptr<BernoulliUnionSampler>> Create(
      std::vector<JoinSpecPtr> joins,
      std::vector<std::unique_ptr<JoinSampler>> samplers,
      UnionEstimates estimates,
      std::vector<JoinMembershipProberPtr> probers);

  Result<std::vector<Tuple>> Sample(size_t n, Rng& rng);

  const UnionSampleStats& stats() const { return stats_; }

  // Not copyable or movable: oracle_ points into this object's probers_.
  BernoulliUnionSampler(const BernoulliUnionSampler&) = delete;
  BernoulliUnionSampler& operator=(const BernoulliUnionSampler&) = delete;

 private:
  BernoulliUnionSampler(std::vector<JoinSpecPtr> joins,
                        std::vector<std::unique_ptr<JoinSampler>> samplers,
                        UnionEstimates estimates,
                        std::vector<JoinMembershipProberPtr> probers)
      : joins_(std::move(joins)),
        samplers_(std::move(samplers)),
        estimates_(std::move(estimates)),
        probers_(std::move(probers)) {}

  std::vector<JoinSpecPtr> joins_;
  std::vector<std::unique_ptr<JoinSampler>> samplers_;
  UnionEstimates estimates_;
  std::vector<JoinMembershipProberPtr> probers_;
  UnionSampleStats stats_;
  OwnerOracle oracle_{&probers_};
};

/// Example 2's broken baseline: per-join uniform samples, set-unioned.
/// Returned tuples are NOT uniform over the union (tests demonstrate the
/// bias); kept for comparison benches.
Result<std::vector<Tuple>> NaiveUnionOfSamples(
    const std::vector<JoinSpecPtr>& joins,
    std::vector<std::unique_ptr<JoinSampler>>& samplers,
    size_t samples_per_join, Rng& rng);

}  // namespace suj

#endif  // SUJ_CORE_UNION_SAMPLER_H_
