// Union sampling (§2, §3, Algorithm 1).
//
// Four samplers, all drawing with replacement:
//  * DisjointUnionSampler  -- Definition 1: select a join proportionally to
//    its size, sample it; duplicates across joins are legitimate.
//  * BernoulliUnionSampler -- the "union trick" baseline of §3: every join
//    fires independently with probability |J_j|/|U| per round; a fired
//    join's sample is kept only when the join is the FIRST join containing
//    the tuple's value.
//  * UnionSampler          -- Algorithm 1 (non-Bernoulli join selection):
//    joins are selected with the cover probabilities |J'_j|/|U|; a sample
//    from J_j is kept only if the cover assigns its value to J_j, and the
//    sampler retries the SAME join until it yields a kept tuple (that is
//    what makes each round uniform on J'_j). Two ownership modes:
//      - kMembershipOracle (centralized): ownership f(u) = first join
//        containing u, checked exactly with hash probes;
//      - kRevision (decentralized, the paper's Algorithm 1): ownership is
//        learned on the fly; later samples from an earlier join trigger a
//        revision that re-assigns the value and purges stale copies.
//  * NaiveUnionOfSamples   -- Example 2's broken strawman (set union of
//    per-join uniform samples), kept as a negative baseline.
//
// Per-phase wall-clock and rejection accounting feed the Fig 5 breakdowns.

#ifndef SUJ_CORE_UNION_SAMPLER_H_
#define SUJ_CORE_UNION_SAMPLER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/union_size_model.h"
#include "join/join_sampler.h"
#include "join/membership.h"

namespace suj {

/// Counters + phase timings for the union-level sampling loop.
struct UnionSampleStats {
  uint64_t rounds = 0;              ///< join selections
  uint64_t join_draws = 0;          ///< join-sampler attempts (cost psi)
  uint64_t accepted = 0;            ///< tuples added to the result
  uint64_t rejected_cover = 0;      ///< samples outside the join's cover
  uint64_t revisions = 0;           ///< ownership re-assignments
  uint64_t removed_by_revision = 0; ///< result tuples purged by revisions
  /// Rounds abandoned because the selected join produced no owned tuple
  /// within the draw budget. The join's selection weight is zeroed: its
  /// estimated cover was (near-)empty in reality, so continuing to select
  /// it would only burn draws. Non-zero counts indicate loose warm-up
  /// estimates.
  uint64_t abandoned_rounds = 0;
  double accepted_seconds = 0.0;    ///< time in rounds ending in an accept
  double rejected_seconds = 0.0;    ///< time spent on rejected draws

  double CoverRejectionRatio() const {
    uint64_t total = accepted + rejected_cover;
    return total == 0 ? 0.0
                      : static_cast<double>(rejected_cover) /
                            static_cast<double>(total);
  }
};

/// \brief Algorithm 1: uniform i.i.d. sampling over the set union of joins.
class UnionSampler {
 public:
  enum class Mode { kRevision, kMembershipOracle };

  struct Options {
    Mode mode = Mode::kRevision;
    /// Retry cap for one round. When a round exhausts the budget, the
    /// selected join's estimated cover claimed tuples the join cannot
    /// produce (it is fully covered by earlier joins); the round is
    /// abandoned and the join's selection weight zeroed.
    uint64_t max_draws_per_round = 50000;
  };

  /// \param joins      union-compatible joins J_0..J_{n-1} (cover order).
  /// \param samplers   one uniform sampler per join (EW or EO).
  /// \param estimates  warm-up output (cover sizes drive join selection).
  /// \param probers    membership oracles; required for kMembershipOracle.
  static Result<std::unique_ptr<UnionSampler>> Create(
      std::vector<JoinSpecPtr> joins,
      std::vector<std::unique_ptr<JoinSampler>> samplers,
      UnionEstimates estimates, std::vector<JoinMembershipProberPtr> probers,
      Options options);
  static Result<std::unique_ptr<UnionSampler>> Create(
      std::vector<JoinSpecPtr> joins,
      std::vector<std::unique_ptr<JoinSampler>> samplers,
      UnionEstimates estimates,
      std::vector<JoinMembershipProberPtr> probers = {}) {
    return Create(std::move(joins), std::move(samplers), std::move(estimates),
                  std::move(probers), Options());
  }

  /// Draws `n` tuples with replacement, each (with exact parameters)
  /// uniform over the set union. Under the revision mode the result can
  /// additionally shrink mid-run; the loop continues until `n` tuples
  /// stand.
  Result<std::vector<Tuple>> Sample(size_t n, Rng& rng);

  const UnionSampleStats& stats() const { return stats_; }
  void ResetStats() { stats_ = UnionSampleStats(); }
  const UnionEstimates& estimates() const { return estimates_; }
  const std::vector<JoinSpecPtr>& joins() const { return joins_; }

  /// Aggregated join-level sampler statistics (rejections inside EW/EO).
  JoinSampleStats AggregatedJoinStats() const;

 private:
  UnionSampler(std::vector<JoinSpecPtr> joins,
               std::vector<std::unique_ptr<JoinSampler>> samplers,
               UnionEstimates estimates,
               std::vector<JoinMembershipProberPtr> probers, Options options)
      : joins_(std::move(joins)),
        samplers_(std::move(samplers)),
        estimates_(std::move(estimates)),
        probers_(std::move(probers)),
        options_(options) {}

  /// First join containing `tuple` (oracle mode); -1 if none (impossible
  /// for tuples produced by a member join).
  int FirstContainingJoin(const Tuple& tuple) const;

  std::vector<JoinSpecPtr> joins_;
  std::vector<std::unique_ptr<JoinSampler>> samplers_;
  UnionEstimates estimates_;
  std::vector<JoinMembershipProberPtr> probers_;
  Options options_;
  UnionSampleStats stats_;
};

/// \brief Definition 1: sampling the disjoint union (duplicates retained).
class DisjointUnionSampler {
 public:
  static Result<std::unique_ptr<DisjointUnionSampler>> Create(
      std::vector<JoinSpecPtr> joins,
      std::vector<std::unique_ptr<JoinSampler>> samplers,
      std::vector<double> join_sizes);

  Result<std::vector<Tuple>> Sample(size_t n, Rng& rng);

 private:
  DisjointUnionSampler(std::vector<JoinSpecPtr> joins,
                       std::vector<std::unique_ptr<JoinSampler>> samplers,
                       std::vector<double> join_sizes)
      : joins_(std::move(joins)),
        samplers_(std::move(samplers)),
        join_sizes_(std::move(join_sizes)) {}

  std::vector<JoinSpecPtr> joins_;
  std::vector<std::unique_ptr<JoinSampler>> samplers_;
  std::vector<double> join_sizes_;
};

/// \brief §3's Bernoulli "union trick" baseline.
class BernoulliUnionSampler {
 public:
  static Result<std::unique_ptr<BernoulliUnionSampler>> Create(
      std::vector<JoinSpecPtr> joins,
      std::vector<std::unique_ptr<JoinSampler>> samplers,
      UnionEstimates estimates,
      std::vector<JoinMembershipProberPtr> probers);

  Result<std::vector<Tuple>> Sample(size_t n, Rng& rng);

  const UnionSampleStats& stats() const { return stats_; }

 private:
  BernoulliUnionSampler(std::vector<JoinSpecPtr> joins,
                        std::vector<std::unique_ptr<JoinSampler>> samplers,
                        UnionEstimates estimates,
                        std::vector<JoinMembershipProberPtr> probers)
      : joins_(std::move(joins)),
        samplers_(std::move(samplers)),
        estimates_(std::move(estimates)),
        probers_(std::move(probers)) {}

  std::vector<JoinSpecPtr> joins_;
  std::vector<std::unique_ptr<JoinSampler>> samplers_;
  UnionEstimates estimates_;
  std::vector<JoinMembershipProberPtr> probers_;
  UnionSampleStats stats_;
};

/// Example 2's broken baseline: per-join uniform samples, set-unioned.
/// Returned tuples are NOT uniform over the union (tests demonstrate the
/// bias); kept for comparison benches.
Result<std::vector<Tuple>> NaiveUnionOfSamples(
    const std::vector<JoinSpecPtr>& joins,
    std::vector<std::unique_ptr<JoinSampler>>& samplers,
    size_t samples_per_join, Rng& rng);

}  // namespace suj

#endif  // SUJ_CORE_UNION_SAMPLER_H_
