// OwnershipMap: epoch-reconciled cover ownership for the parallel
// revision-mode protocol (Algorithm 1, decentralized).
//
// The sequential revision protocol learns the cover assignment f(u) in one
// shared mutable map: every accepted tuple claims its value for the join it
// was drawn from, later draws from earlier joins revise the claim and purge
// the stale copies. That single map is what pinned revision mode to one
// thread. The parallel path splits the learning into EPOCHS:
//
//   1. During an epoch, workers sample batches against an immutable
//      SNAPSHOT of the reconciled map (`Owner()`), layering batch-local
//      tentative claims on top. Claims are journaled per batch, in
//      acceptance order, into slots indexed by batch — never shared
//      between batches — so batch output stays a pure function of
//      (seed, batch index, snapshot).
//   2. Between epochs, a single deterministic reconciliation pass
//      (`Reconcile()`) replays every claim in GLOBAL ROUND ORDER (batch
//      order, then in-batch order — never thread arrival order) and
//      applies exactly the sequential protocol's rules: first claim wins,
//      an earlier-join claim triggers a revision that re-assigns the value
//      and purges every stale copy from the result, a later-join claim of
//      an owned value is dropped (the sequential loop would have rejected
//      and re-drawn it; the epoch driver tops the shortfall up in the next
//      epoch).
//
// Because both the per-batch sampling and the replay order are functions
// of the seed alone, the delivered sample sequence is byte-identical for
// every thread count, including 1 — the same guarantee the oracle-mode
// executor path makes.
//
// Thread-safety contract: Owner()/size()/epochs() may run concurrently
// with each other AND with one Reconcile() (readers see either the
// previous or the new epoch's assignments, never a torn map). Reconcile()
// calls must be externally serialized — the epoch driver runs them on one
// thread between fan-outs, which also gives every worker of epoch e+1 the
// complete epoch-e assignments.

#ifndef SUJ_CORE_OWNERSHIP_MAP_H_
#define SUJ_CORE_OWNERSHIP_MAP_H_

#include <cstdint>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/tuple.h"

namespace suj {

/// One tentative ownership claim: a batch's local revision protocol
/// accepted a tuple with canonical encoding `key` drawn from join `join`.
struct OwnershipClaim {
  std::string key;
  int join = -1;
};

/// The claims of one batch in acceptance order: exactly one claim per
/// tuple the batch returned, index-aligned with the batch's tuples.
using ClaimBatch = std::vector<OwnershipClaim>;

/// What one reconciliation pass did (per-epoch accounting).
struct ReconcileOutcome {
  uint64_t appended = 0;   ///< claims whose tuples joined the result
  uint64_t dropped = 0;    ///< claims lost to an earlier-join owner
  uint64_t revisions = 0;  ///< values re-assigned to an earlier join
  uint64_t purged = 0;     ///< result tuples removed by those revisions
};

/// \brief Reconciled cover-ownership state shared across batch epochs.
class OwnershipMap {
 public:
  OwnershipMap() = default;
  OwnershipMap(const OwnershipMap&) = delete;
  OwnershipMap& operator=(const OwnershipMap&) = delete;

  /// Owner of `key` per the completed epochs, or -1 if unclaimed. Safe to
  /// call concurrently from any number of workers, including while one
  /// Reconcile() is running.
  int Owner(const std::string& key) const;

  /// \brief Lock-free read-only view of the reconciled owners.
  ///
  /// For the sampling hot path: one Owner() probe per non-local draw
  /// would otherwise take the shared mutex millions of times per
  /// request, bouncing its cache line across every worker. Only valid
  /// while no Reconcile() runs — the epoch driver guarantees that by
  /// fanning workers out strictly between reconciliation passes (worker
  /// create/join provide the happens-before edges). Callers without
  /// that structural guarantee must use the locked Owner() instead.
  class View {
   public:
    int Owner(const std::string& key) const {
      auto it = owners_->find(key);
      return it == owners_->end() ? -1 : it->second;
    }

   private:
    friend class OwnershipMap;
    explicit View(const std::unordered_map<std::string, int>* owners)
        : owners_(owners) {}
    const std::unordered_map<std::string, int>* owners_;
  };

  /// The unsynchronized view (see View for the validity contract).
  View UnsynchronizedView() const { return View(&owners_); }

  /// Replays one epoch's claims in global round order against the
  /// reconciled map, appending each surviving claim's tuple to `*result`
  /// (and its key to `*result_keys`, kept index-aligned). `claims` and
  /// `tuples` are the epoch's batches concatenated IN BATCH ORDER and must
  /// be the same length. Revisions purge stale copies of the re-assigned
  /// value from the whole of `*result` — tuples appended in earlier
  /// epochs and earlier in this epoch alike, exactly as the sequential
  /// protocol purges its call-local result. Consumes both inputs (claim
  /// keys move into *result_keys). Must not run concurrently with
  /// another Reconcile (Owner lookups remain safe).
  ReconcileOutcome Reconcile(std::vector<OwnershipClaim>&& claims,
                             std::vector<Tuple>&& tuples,
                             std::vector<Tuple>* result,
                             std::vector<std::string>* result_keys);

  /// Distinct values with a reconciled owner.
  size_t size() const;

  /// Completed Reconcile passes.
  uint64_t epochs() const;

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, int> owners_;
  uint64_t epochs_ = 0;
};

}  // namespace suj

#endif  // SUJ_CORE_OWNERSHIP_MAP_H_
