// Histogram-based overlap estimation (§5, Theorem 4; acyclic/cyclic
// extension §8).
//
// The decentralized instantiation of the warm-up: join sizes and overlaps
// are bounded purely from column statistics (value->degree histograms and
// max degrees), with no access to the data itself. Every join is first
// decomposed against the shared standard template (core/splitting.h); the
// resulting aligned chains are compared link-by-link:
//
//   K(1) = sum_{v in C} min_j { d_A1(v, R_j1) * d_A1(v, R_j2) }
//   K(i) = K(i-1) * min_j M_{j,i},   M_{j,i} = 1 for fake joins
//   |O_Delta| <= K(L-1)
//
// Virtual links (template pairs not co-located in any base relation)
// inflate their degree statistics by the product of max degrees along the
// join path that connects the pair -- the §8.1 sub-join pre-estimation.
//
// Options extend the paper's base method:
//  * use_avg_degree: replace max degree by average degree in the M terms
//    (§5.1's refinement; tighter but no longer a guaranteed bound),
//  * best_rotation: evaluate the recurrence starting from every adjacent
//    link pair and keep the smallest bound (each start yields a valid
//    bound, so the min is still a bound); OFF reproduces the paper.

#ifndef SUJ_CORE_HISTOGRAM_OVERLAP_H_
#define SUJ_CORE_HISTOGRAM_OVERLAP_H_

#include <memory>
#include <vector>

#include "core/overlap_estimator.h"
#include "core/splitting.h"
#include "core/template_selector.h"
#include "stats/column_histogram.h"

namespace suj {

/// \brief Upper-bound overlap estimator from column histograms only.
class HistogramOverlapEstimator : public OverlapEstimator {
 public:
  struct Options {
    /// Use average instead of max degree in the M terms (§5.1 refinement;
    /// estimates may undershoot).
    bool use_avg_degree = false;
    /// Take the min bound over all recurrence starting positions.
    bool best_rotation = false;
    /// Cap overlap bounds at the smallest member join-size bound.
    bool cap_with_join_size = true;
    /// Template selection knobs (§8.1.2).
    TemplateSelector::Options template_options;
    /// Explicit template; auto-selected when empty.
    std::vector<std::string> template_attrs;
  };

  static Result<std::unique_ptr<HistogramOverlapEstimator>> Create(
      std::vector<JoinSpecPtr> joins, HistogramCatalog* histograms,
      Options options);
  static Result<std::unique_ptr<HistogramOverlapEstimator>> Create(
      std::vector<JoinSpecPtr> joins, HistogramCatalog* histograms) {
    return Create(std::move(joins), histograms, Options());
  }

  const std::vector<JoinSpecPtr>& joins() const override { return joins_; }
  Result<double> EstimateOverlap(SubsetMask subset) override;
  bool IsUpperBound() const override { return !options_.use_avg_degree; }

  /// The standard template the joins were split against.
  const std::vector<std::string>& template_attrs() const {
    return template_attrs_;
  }
  const std::vector<EstimationChain>& chains() const { return chains_; }

 private:
  /// Precomputed per-link statistics for one join.
  struct LinkStats {
    ColumnHistogramPtr left;    ///< histogram of attr_left in the source
    ColumnHistogramPtr right;   ///< histogram of attr_right in the source
    double mult_left = 1.0;     ///< virtual-link inflation, left-degree side
    double mult_right = 1.0;    ///< virtual-link inflation, right-degree side
    double row_bound = 0.0;     ///< bound on the (virtual) relation size
    bool fake_join_to_next = false;
  };

  HistogramOverlapEstimator(std::vector<JoinSpecPtr> joins, Options options)
      : joins_(std::move(joins)), options_(std::move(options)) {}

  /// Bound with the K recurrence started at adjacent link pair
  /// (start, start + 1).
  double BoundFromStart(const std::vector<int>& members, int start) const;

  std::vector<JoinSpecPtr> joins_;
  Options options_;
  std::vector<std::string> template_attrs_;
  std::vector<EstimationChain> chains_;           // per join
  std::vector<std::vector<LinkStats>> stats_;     // per join, per link
  std::vector<double> join_size_bounds_;          // singleton bounds
};

}  // namespace suj

#endif  // SUJ_CORE_HISTOGRAM_OVERLAP_H_
