#include "core/splitting.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace suj {

namespace {

std::vector<int> Holders(const JoinSpec& join, const std::string& a) {
  std::vector<int> out;
  for (int r = 0; r < join.num_relations(); ++r) {
    if (join.relation(r)->schema().HasField(a)) out.push_back(r);
  }
  return out;
}

// Shortest relation-index path from any holder of `a` to any holder of `b`
// over the structural edges.
Result<std::vector<int>> ShortestPath(const JoinSpec& join,
                                      const std::string& a,
                                      const std::string& b) {
  const int n = join.num_relations();
  std::vector<std::vector<int>> adj(n);
  for (const auto& e : join.graph().edges()) {
    adj[e.left].push_back(e.right);
    adj[e.right].push_back(e.left);
  }
  std::vector<int> from = Holders(join, a);
  std::vector<int> to = Holders(join, b);
  if (from.empty() || to.empty()) {
    return Status::NotFound("attribute '" + (from.empty() ? a : b) +
                            "' not in join '" + join.name() + "'");
  }
  std::vector<bool> target(n, false);
  for (int r : to) target[r] = true;
  std::vector<int> prev(n, -2);
  std::deque<int> queue;
  for (int r : from) {
    prev[r] = -1;
    queue.push_back(r);
  }
  while (!queue.empty()) {
    int u = queue.front();
    queue.pop_front();
    if (target[u]) {
      std::vector<int> path;
      for (int cur = u; cur >= 0; cur = prev[cur]) path.push_back(cur);
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (int v : adj[u]) {
      if (prev[v] == -2) {
        prev[v] = u;
        queue.push_back(v);
      }
    }
  }
  return Status::Internal("join graph disconnected in ShortestPath()");
}

}  // namespace

Result<EstimationChain> SplitJoinToChain(
    const JoinSpecPtr& join, const std::vector<std::string>& template_attrs) {
  if (join == nullptr) return Status::InvalidArgument("null join");
  // The template must be a permutation of the output attributes.
  std::unordered_set<std::string> tmpl(template_attrs.begin(),
                                       template_attrs.end());
  if (tmpl.size() != template_attrs.size()) {
    return Status::InvalidArgument("template contains duplicate attributes");
  }
  const Schema& out = join->output_schema();
  if (tmpl.size() != out.num_fields()) {
    return Status::InvalidArgument(
        "template size " + std::to_string(tmpl.size()) +
        " != output arity " + std::to_string(out.num_fields()));
  }
  for (const auto& f : out.fields()) {
    if (!tmpl.count(f.name)) {
      return Status::InvalidArgument("template missing output attribute '" +
                                     f.name + "'");
    }
  }

  EstimationChain chain;
  chain.join = join;
  chain.template_attrs = template_attrs;
  if (template_attrs.size() == 1) return chain;  // degenerate: no links

  for (size_t i = 0; i + 1 < template_attrs.size(); ++i) {
    const std::string& a = template_attrs[i];
    const std::string& b = template_attrs[i + 1];
    EstimationLink link;
    link.attr_left = a;
    link.attr_right = b;
    // Prefer the smallest relation containing both attributes.
    int best = -1;
    for (int r = 0; r < join->num_relations(); ++r) {
      const Schema& s = join->relation(r)->schema();
      if (s.HasField(a) && s.HasField(b)) {
        if (best < 0 ||
            join->relation(r)->num_rows() <
                join->relation(best)->num_rows()) {
          best = r;
        }
      }
    }
    if (best >= 0) {
      link.source_relation = best;
    } else {
      auto path = ShortestPath(*join, a, b);
      if (!path.ok()) return path.status();
      link.path = std::move(path).value();
    }
    chain.links.push_back(std::move(link));
  }

  // Fake-join flags: consecutive links sourced from the same base relation.
  for (size_t i = 0; i + 1 < chain.links.size(); ++i) {
    chain.links[i].fake_join_to_next =
        !chain.links[i].is_virtual() && !chain.links[i + 1].is_virtual() &&
        chain.links[i].source_relation == chain.links[i + 1].source_relation;
  }
  return chain;
}

}  // namespace suj
