// Random-walk overlap estimation (§6, Eq 2/3).
//
// The centralized instantiation of the warm-up: wander-join walks over each
// join produce tuples with exactly known probabilities; Horvitz-Thompson
// weighting (the paper's S'_j construction, which replicates each tuple
// 1/p(t) times) yields unbiased estimates of |J_j|, and probing each walk
// tuple for membership in the other joins (hash-table lookups, §6.2) yields
// the overlap ratio |O_Delta|/|J_j| and hence |O_Delta|. Walks terminate at
// a target confidence level or a walk cap, per §9's setup (90% / 1000).
//
// Every successful walk is recorded (tuple, probability, membership mask);
// the records double as the reuse pool of the online union sampler (§7).

#ifndef SUJ_CORE_RANDOM_WALK_OVERLAP_H_
#define SUJ_CORE_RANDOM_WALK_OVERLAP_H_

#include <memory>
#include <vector>

#include "core/overlap_estimator.h"
#include "join/membership.h"
#include "join/wander_join.h"

namespace suj {

/// \brief Online, unbiased overlap estimator driven by random walks.
class RandomWalkOverlapEstimator : public OverlapEstimator {
 public:
  struct Options {
    /// Confidence level for the termination rule (paper: 0.90).
    double confidence = 0.90;
    /// Stop when the relative CI half-width of |J_j| drops below this.
    double relative_halfwidth = 0.10;
    /// Walk budget per join (paper caps warm-up at 1,000 samples).
    uint64_t min_walks = 64;
    uint64_t max_walks = 1000;
    /// Membership probers to reuse instead of building at Create (must
    /// match the join set when non-empty). Building probers is the heavy
    /// part of estimator construction; the service layer creates one
    /// per-session estimator per client and shares the prepared plan's
    /// immutable probers across all of them.
    std::vector<JoinMembershipProberPtr> probers;
    /// Per-join wander-sampler factory override; null builds plain
    /// WanderJoinSampler instances over the Create-time cache. Sharded
    /// plans pass their shard-routing factory so warm-up and fresh walks
    /// consume the same RNG stream the unsharded estimator would.
    WanderSamplerFactory wander_factory;
  };

  static Result<std::unique_ptr<RandomWalkOverlapEstimator>> Create(
      std::vector<JoinSpecPtr> joins, CompositeIndexCache* cache,
      Options options);
  static Result<std::unique_ptr<RandomWalkOverlapEstimator>> Create(
      std::vector<JoinSpecPtr> joins, CompositeIndexCache* cache) {
    return Create(std::move(joins), cache, Options());
  }

  /// Runs the warm-up walks for every join (no-op for joins already at
  /// their budget).
  Status Warmup(Rng& rng);

  /// One additional walk on `join_index`, folded into the estimates and the
  /// record pool. Used by the online union sampler, which interleaves
  /// estimation with sampling (§7). Returns the walk outcome for reuse.
  Result<WalkOutcome> WalkAndRecord(int join_index, Rng& rng);

  const std::vector<JoinSpecPtr>& joins() const override { return joins_; }
  Result<double> EstimateOverlap(SubsetMask subset) override;
  bool IsUpperBound() const override { return false; }

  /// Eq-3-style confidence half-width for |O_subset| at `confidence`.
  Result<double> OverlapHalfWidth(SubsetMask subset, double confidence) const;

  /// Relative CI half-width of |J_j| (the backtracking stop criterion).
  double JoinSizeRelativeHalfWidth(int join_index, double confidence) const;

  /// One recorded successful walk.
  struct WalkRecord {
    Tuple tuple;
    double probability;
    SubsetMask membership;  ///< joins containing the tuple (own bit set)
  };
  const std::vector<WalkRecord>& records(int join_index) const {
    return records_[join_index];
  }
  uint64_t num_walks(int join_index) const {
    return estimators_[join_index].num_walks();
  }

 private:
  RandomWalkOverlapEstimator(std::vector<JoinSpecPtr> joins, Options options)
      : joins_(std::move(joins)), options_(options) {}

  /// Membership bitmask of `tuple` over all joins (bit j set iff in J_j).
  SubsetMask MembershipMask(const Tuple& tuple, int origin) const;

  std::vector<JoinSpecPtr> joins_;
  Options options_;
  std::vector<std::unique_ptr<WanderJoinSampler>> samplers_;
  std::vector<WanderJoinSizeEstimator> estimators_;
  std::vector<JoinMembershipProberPtr> probers_;
  std::vector<std::vector<WalkRecord>> records_;
};

}  // namespace suj

#endif  // SUJ_CORE_RANDOM_WALK_OVERLAP_H_
