// OverlapEstimator: the warm-up interface of the union framework.
//
// Everything the union sampler needs from data -- join sizes |J_j|, overlap
// sizes |O_Delta| for subsets Delta of the join set -- flows through this
// interface. The framework is instantiated by plugging in one of:
//  * ExactOverlapCalculator  (full joins; ground truth / FullJoinUnion),
//  * HistogramOverlapEstimator (§5; upper bounds from column statistics),
//  * RandomWalkOverlapEstimator (§6; online unbiased estimates).
// Theorem 1 guarantees uniformity for ANY instantiation; they differ only
// in sampling efficiency (§9).

#ifndef SUJ_CORE_OVERLAP_ESTIMATOR_H_
#define SUJ_CORE_OVERLAP_ESTIMATOR_H_

#include <vector>

#include "common/combinatorics.h"
#include "common/result.h"
#include "join/join_spec.h"

namespace suj {

/// \brief Supplies |O_Delta| estimates for subsets of a fixed join set.
class OverlapEstimator {
 public:
  // Defined out of line in overlap_estimator.cc; serves as the key function
  // so the vtable is emitted in exactly one translation unit.
  virtual ~OverlapEstimator();

  /// The join set S = {J_0..J_{n-1}} this estimator covers.
  virtual const std::vector<JoinSpecPtr>& joins() const = 0;
  int num_joins() const { return static_cast<int>(joins().size()); }

  /// Estimate of |O_Delta| = |intersection of joins selected by `subset`|.
  /// `subset` must be non-empty; a singleton yields the join-size estimate.
  virtual Result<double> EstimateOverlap(SubsetMask subset) = 0;

  /// Estimate of |J_j| (shorthand for the singleton subset).
  Result<double> EstimateJoinSize(int join_index) {
    return EstimateOverlap(1ULL << join_index);
  }

  /// True iff estimates are guaranteed upper bounds (histogram method)
  /// rather than convergent point estimates (random walk, exact).
  virtual bool IsUpperBound() const = 0;
};

}  // namespace suj

#endif  // SUJ_CORE_OVERLAP_ESTIMATOR_H_
