// Online union sampling (§7, Algorithm 2).
//
// Extends Algorithm 1 with two optimizations that amortize the random-walk
// warm-up:
//  * Sample reuse: the non-uniform tuples collected by wander-join walks
//    (each with exact probability p(t)) are recycled into the main phase.
//    A pool entry is popped uniformly (and consumed -- draws are without
//    replacement) and accepted with probability p_min / p(t), where p_min
//    is the smallest walk probability in the initial pool. Expected pool
//    multiplicity of a tuple u is proportional to p(u), so acceptance
//    p_min/p(u) equalizes the emission rate across tuples -- the same
//    1/p(t)-reweighting as the paper's S'_j construction, implemented as a
//    rejection step with acceptance <= 1 (avoiding the multi-instance
//    variance blow-up of emitting 1/(p(t)|J_j|) copies at once). An
//    exhausted pool falls back to fresh walks.
//  * Backtracking with parameter update: estimates initialize from the
//    cheap histogram method and are refined by every walk. Every phi
//    recorded probabilities the estimates are recomputed and previously
//    accepted tuples are re-thinned with probability min(1, p_new/p_old),
//    aligning old samples with the updated distribution; backtracking
//    stops once the walk estimates reach the target confidence gamma.
//
// Fresh walks are also converted to uniform samples via the same
// acceptance-rate trick with l = 1, so the main phase never needs the EW/EO
// machinery -- matching the paper's description of the online method.

#ifndef SUJ_CORE_ONLINE_UNION_SAMPLER_H_
#define SUJ_CORE_ONLINE_UNION_SAMPLER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/random_walk_overlap.h"
#include "core/union_sampler.h"

namespace suj {

/// Counters for the online sampler; extends the union-level stats with
/// reuse/backtracking accounting (Fig 6).
struct OnlineUnionSampleStats : UnionSampleStats {
  uint64_t reuse_draws = 0;        ///< pool draws attempted
  uint64_t reuse_accepted = 0;     ///< result tuples emitted from the pool
  uint64_t fresh_walks = 0;        ///< fresh wander-join walks
  uint64_t fresh_accepted = 0;     ///< result tuples emitted from walks
  uint64_t backtracks = 0;         ///< parameter-update passes
  uint64_t removed_by_backtrack = 0;
  double reuse_seconds = 0.0;      ///< time spent in pool draws
  double regular_seconds = 0.0;    ///< time spent in fresh walks
  double backtrack_seconds = 0.0;  ///< time spent re-estimating/thinning

  using UnionSampleStats::MergeFrom;
  /// Folds another online stats block (e.g. one parallel worker's) in.
  /// Same plan-id contract as the base MergeFrom.
  Status MergeFrom(const OnlineUnionSampleStats& other);
};

/// \brief Algorithm 2: set-union sampling with reuse and backtracking.
class OnlineUnionSampler {
 public:
  struct Options {
    UnionSampler::Mode mode = UnionSampler::Mode::kMembershipOracle;
    /// Recycle warm-up walk tuples (Fig 6 toggles this).
    bool enable_reuse = true;
    /// phi: recorded probabilities between backtracking passes; 0 disables.
    uint64_t backtrack_interval = 0;
    /// gamma: confidence level of the estimate CIs.
    double confidence = 0.90;
    /// Stop backtracking when every join's relative CI half-width at
    /// `confidence` is below this threshold.
    double ci_threshold = 0.10;
    uint64_t max_draws_per_round = 100000;
    /// Worker threads for the batched fresh-walk phase (engaged by
    /// setting `index_cache`); 0 = hardware concurrency. Reuse-pool draws
    /// and backtracking stay single-threaded (they mutate shared
    /// pools/estimates); once the pools are drained and backtracking has
    /// settled, the remaining walks fan out over the parallel executor
    /// against the then-frozen estimates, each worker with its own
    /// wander-join samplers over the shared read-only indexes. Requires
    /// kMembershipOracle mode. Same seed + same n => identical samples
    /// for EVERY num_threads, including 1. Caveat: multi-instance
    /// (Horvitz-Thompson) accepts are clipped at batch rather than call
    /// granularity, so with badly underestimated join sizes the batched
    /// tail truncates overshoot more often than the sequential path;
    /// with calibrated warm-up estimates (instances ~= 1) the effect is
    /// negligible.
    size_t num_threads = 1;
    /// Tuples per parallel batch (see UnionSampler::Options::batch_size).
    size_t batch_size = 64;
    /// Setting this engages the batched fresh-walk phase; it builds each
    /// worker's wander-join samplers. Indexes are created or reused on
    /// the calling thread; workers only read them.
    ///
    /// Ownership: shared. The sampler keeps its reference for its whole
    /// lifetime, so the cache outlives every sampler holding it no matter
    /// who created it — the service layer hands ONE cache to many
    /// concurrent sessions precisely this way. GetOrBuild is internally
    /// synchronized (see index/composite_index.h), and the indexes it
    /// yields are immutable. Leave null for the fully sequential loop.
    std::shared_ptr<CompositeIndexCache> index_cache;
    /// Membership probers to use in kMembershipOracle mode. When empty
    /// they are built at Create, which costs one row-membership hash set
    /// per base relation; long-lived servers pass the prepared plan's
    /// probers here so every session shares one immutable set.
    std::vector<JoinMembershipProberPtr> probers;
    /// Prepared-plan identity stamped onto stats() (see
    /// UnionSampleStats::plan_id); 0 for ad-hoc use.
    uint64_t plan_id = 0;
    /// Per-join wander-sampler factory for the batched fresh-walk phase;
    /// null builds plain WanderJoinSampler instances over `index_cache`.
    /// Sharded plans pass their shard-routing factory so each worker's
    /// walks route root draws exactly as the sequential walker does.
    WanderSamplerFactory wander_factory;
  };

  /// \param joins     union-compatible joins (cover order).
  /// \param walker    random-walk estimator; its recorded walks seed the
  ///                  reuse pools, and fresh walks are routed through it so
  ///                  estimates keep improving. Not owned; must outlive the
  ///                  sampler.
  /// \param initial   warm-up estimates (histogram-based for the online
  ///                  setting, or walk-based when a warm-up was run).
  static Result<std::unique_ptr<OnlineUnionSampler>> Create(
      std::vector<JoinSpecPtr> joins, RandomWalkOverlapEstimator* walker,
      UnionEstimates initial, Options options);
  static Result<std::unique_ptr<OnlineUnionSampler>> Create(
      std::vector<JoinSpecPtr> joins, RandomWalkOverlapEstimator* walker,
      UnionEstimates initial) {
    return Create(std::move(joins), walker, std::move(initial), Options());
  }

  /// Draws `n` tuples with replacement.
  Result<std::vector<Tuple>> Sample(size_t n, Rng& rng);

  const OnlineUnionSampleStats& stats() const { return stats_; }
  void ResetStats() {
    stats_ = OnlineUnionSampleStats();
    stats_.plan_id = options_.plan_id;
  }

  /// Estimates currently in force (refined by backtracking passes).
  const UnionEstimates& current_estimates() const { return estimates_; }

  // Not copyable or movable: oracle_ points into this object's probers_.
  OnlineUnionSampler(const OnlineUnionSampler&) = delete;
  OnlineUnionSampler& operator=(const OnlineUnionSampler&) = delete;

 private:
  struct PoolEntry {
    Tuple tuple;
    double probability;
  };

  OnlineUnionSampler(std::vector<JoinSpecPtr> joins,
                     RandomWalkOverlapEstimator* walker,
                     UnionEstimates initial, Options options)
      : joins_(std::move(joins)),
        walker_(walker),
        estimates_(std::move(initial)),
        options_(std::move(options)) {
    stats_.plan_id = options_.plan_id;
  }

  /// Probability that one accepted draw lands on a FIXED value owned by
  /// join j under the current estimates: cover_share(j) / |J_j|.
  double TupleProbability(int owner_join) const;

  /// Re-estimates parameters and thins the accepted result (§7).
  Status Backtrack(std::vector<Tuple>* result,
                   std::vector<std::string>* keys, std::vector<int>* owners,
                   std::vector<double>* probs, Rng& rng);

  /// True once the sequential phase has nothing left that must stay
  /// sequential: pools drained (or reuse disabled) and backtracking
  /// settled.
  bool ParallelTailReady() const;

  /// Fans the remaining `n` fresh walks out over the parallel executor
  /// with frozen estimates (oracle mode only).
  Result<std::vector<Tuple>> SampleFreshParallel(size_t n, uint64_t seed);

  std::vector<JoinSpecPtr> joins_;
  RandomWalkOverlapEstimator* walker_;
  UnionEstimates estimates_;
  Options options_;
  std::vector<std::vector<PoolEntry>> pools_;
  /// Smallest walk probability in each join's initial pool (acceptance
  /// normalizer; fixed at Create so acceptance stays <= 1 as pools drain).
  std::vector<double> pool_min_p_;
  std::vector<JoinMembershipProberPtr> probers_;  // oracle mode
  /// f(u) memoized over probers_ (oracle mode).
  OwnerOracle oracle_{&probers_};
  /// Ownership record of the revision protocol (revision mode only).
  std::unordered_map<std::string, int> owner_;
  OnlineUnionSampleStats stats_;
  uint64_t recorded_since_backtrack_ = 0;
  bool backtracking_active_ = true;
  /// Joins whose rounds were abandoned (estimated cover empty in reality);
  /// excluded from selection even after backtracking refreshes estimates.
  std::vector<bool> disabled_;
};

}  // namespace suj

#endif  // SUJ_CORE_ONLINE_UNION_SAMPLER_H_
