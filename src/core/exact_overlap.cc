#include "core/exact_overlap.h"

namespace suj {

Result<std::unique_ptr<ExactOverlapCalculator>> ExactOverlapCalculator::Create(
    std::vector<JoinSpecPtr> joins, CompositeIndexCache* cache) {
  SUJ_RETURN_NOT_OK(ValidateUnionCompatible(joins));
  if (joins.size() > 63) {
    return Status::InvalidArgument("at most 63 joins supported");
  }
  auto calc = std::unique_ptr<ExactOverlapCalculator>(
      new ExactOverlapCalculator(std::move(joins)));

  FullJoinExecutor executor(cache);
  for (size_t j = 0; j < calc->joins_.size(); ++j) {
    auto result = executor.Execute(calc->joins_[j]);
    if (!result.ok()) return result.status();
    std::unordered_set<std::string> encoded;
    encoded.reserve(result->tuples.size());
    for (const auto& t : result->tuples) {
      encoded.insert(t.Encode());
    }
    for (const auto& e : encoded) {
      calc->membership_[e] |= 1ULL << j;
    }
    calc->join_sets_.push_back(std::move(encoded));
  }
  calc->union_size_ = calc->membership_.size();
  return calc;
}

Result<double> ExactOverlapCalculator::EstimateOverlap(SubsetMask subset) {
  if (subset == 0 || subset >= (1ULL << joins_.size())) {
    return Status::InvalidArgument("subset mask out of range");
  }
  uint64_t count = 0;
  for (const auto& [encoded, mask] : membership_) {
    if ((mask & subset) == subset) ++count;
  }
  return static_cast<double>(count);
}

}  // namespace suj
