#include "core/exact_overlap.h"

namespace suj {

namespace {

/// Executes one join and returns its distinct encoded tuples.
Result<std::shared_ptr<const std::unordered_set<std::string>>> MaterializeJoin(
    FullJoinExecutor& executor, const JoinSpecPtr& join) {
  auto result = executor.Execute(join);
  if (!result.ok()) return result.status();
  auto encoded = std::make_shared<std::unordered_set<std::string>>();
  encoded->reserve(result->tuples.size());
  for (const auto& t : result->tuples) {
    encoded->insert(t.Encode());
  }
  return std::shared_ptr<const std::unordered_set<std::string>>(
      std::move(encoded));
}

}  // namespace

Result<std::unique_ptr<ExactOverlapCalculator>> ExactOverlapCalculator::Create(
    std::vector<JoinSpecPtr> joins, CompositeIndexCache* cache) {
  SUJ_RETURN_NOT_OK(ValidateUnionCompatible(joins));
  if (joins.size() > 63) {
    return Status::InvalidArgument("at most 63 joins supported");
  }
  auto calc = std::unique_ptr<ExactOverlapCalculator>(
      new ExactOverlapCalculator(std::move(joins)));

  FullJoinExecutor executor(cache);
  for (size_t j = 0; j < calc->joins_.size(); ++j) {
    auto encoded = MaterializeJoin(executor, calc->joins_[j]);
    if (!encoded.ok()) return encoded.status();
    for (const auto& e : *encoded.value()) {
      calc->membership_[e] |= 1ULL << j;
    }
    calc->join_sets_.push_back(std::move(encoded).value());
  }
  calc->union_size_ = calc->membership_.size();
  return calc;
}

Result<std::unique_ptr<ExactOverlapCalculator>>
ExactOverlapCalculator::CreateIncremental(std::vector<JoinSpecPtr> joins,
                                          const ExactOverlapCalculator& prev,
                                          SubsetMask affected_mask,
                                          CompositeIndexCache* cache) {
  SUJ_RETURN_NOT_OK(ValidateUnionCompatible(joins));
  if (joins.size() != prev.joins_.size()) {
    return Status::InvalidArgument(
        "incremental overlap refresh requires positionally matching joins");
  }
  auto calc = std::unique_ptr<ExactOverlapCalculator>(
      new ExactOverlapCalculator(std::move(joins)));

  FullJoinExecutor executor(cache);
  for (size_t j = 0; j < calc->joins_.size(); ++j) {
    if ((affected_mask >> j) & 1) {
      auto encoded = MaterializeJoin(executor, calc->joins_[j]);
      if (!encoded.ok()) return encoded.status();
      calc->join_sets_.push_back(std::move(encoded).value());
    } else {
      calc->join_sets_.push_back(prev.join_sets_[j]);
    }
    for (const auto& e : *calc->join_sets_.back()) {
      calc->membership_[e] |= 1ULL << j;
    }
  }
  calc->union_size_ = calc->membership_.size();
  return calc;
}

Result<double> ExactOverlapCalculator::EstimateOverlap(SubsetMask subset) {
  if (subset == 0 || subset >= (1ULL << joins_.size())) {
    return Status::InvalidArgument("subset mask out of range");
  }
  uint64_t count = 0;
  for (const auto& [encoded, mask] : membership_) {
    if ((mask & subset) == subset) ++count;
  }
  return static_cast<double>(count);
}

}  // namespace suj
