#include "core/template_selector.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace suj {

namespace {

// Relations of `join` containing attribute `a`.
std::vector<int> Holders(const JoinSpec& join, const std::string& a) {
  std::vector<int> out;
  for (int r = 0; r < join.num_relations(); ++r) {
    if (join.relation(r)->schema().HasField(a)) out.push_back(r);
  }
  return out;
}

}  // namespace

Result<int> TemplateSelector::Distance(const JoinSpecPtr& join,
                                       const std::string& a,
                                       const std::string& b) {
  if (join == nullptr) return Status::InvalidArgument("null join");
  std::vector<int> from = Holders(*join, a);
  std::vector<int> to = Holders(*join, b);
  if (from.empty()) {
    return Status::NotFound("attribute '" + a + "' not in join '" +
                            join->name() + "'");
  }
  if (to.empty()) {
    return Status::NotFound("attribute '" + b + "' not in join '" +
                            join->name() + "'");
  }
  // Multi-source BFS over the structural edges.
  const int n = join->num_relations();
  std::vector<std::vector<int>> adj(n);
  for (const auto& e : join->graph().edges()) {
    adj[e.left].push_back(e.right);
    adj[e.right].push_back(e.left);
  }
  std::vector<int> dist(n, -1);
  std::deque<int> queue;
  for (int r : from) {
    dist[r] = 0;
    queue.push_back(r);
  }
  std::vector<bool> target(n, false);
  for (int r : to) target[r] = true;
  while (!queue.empty()) {
    int u = queue.front();
    queue.pop_front();
    if (target[u]) return dist[u];
    for (int v : adj[u]) {
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return Status::Internal("join graph disconnected in Distance()");
}

Result<double> TemplateSelector::PairScore(
    const std::vector<JoinSpecPtr>& joins, const std::string& a,
    const std::string& b, const Options& options) {
  double score = 0.0;
  for (const auto& join : joins) {
    auto d = Distance(join, a, b);
    if (!d.ok()) return d.status();
    score += d.value() == 0 ? options.zero_dist_weight
                            : static_cast<double>(d.value());
  }
  return score;
}

Result<std::vector<std::string>> TemplateSelector::SelectTemplate(
    const std::vector<JoinSpecPtr>& joins, const Options& options) {
  SUJ_RETURN_NOT_OK(ValidateUnionCompatible(joins));
  std::vector<std::string> attrs = joins[0]->output_schema().FieldNames();
  const int d = static_cast<int>(attrs.size());
  if (d == 1) return attrs;

  // Pairwise score matrix.
  std::vector<std::vector<double>> score(d, std::vector<double>(d, 0.0));
  for (int i = 0; i < d; ++i) {
    for (int j = i + 1; j < d; ++j) {
      auto s = PairScore(joins, attrs[i], attrs[j], options);
      if (!s.ok()) return s.status();
      score[i][j] = score[j][i] = s.value();
    }
  }

  std::vector<int> best_path;
  if (d <= options.exact_limit) {
    // Held-Karp minimum-cost Hamiltonian path (free endpoints).
    const double kInf = std::numeric_limits<double>::infinity();
    const size_t m = 1ULL << d;
    std::vector<std::vector<double>> dp(m, std::vector<double>(d, kInf));
    std::vector<std::vector<int>> parent(m, std::vector<int>(d, -1));
    for (int i = 0; i < d; ++i) dp[1ULL << i][i] = 0.0;
    for (size_t mask = 1; mask < m; ++mask) {
      for (int last = 0; last < d; ++last) {
        if (!(mask & (1ULL << last)) || dp[mask][last] == kInf) continue;
        for (int next = 0; next < d; ++next) {
          if (mask & (1ULL << next)) continue;
          size_t nmask = mask | (1ULL << next);
          double cost = dp[mask][last] + score[last][next];
          if (cost < dp[nmask][next]) {
            dp[nmask][next] = cost;
            parent[nmask][next] = last;
          }
        }
      }
    }
    size_t full = m - 1;
    int best_end = 0;
    for (int i = 1; i < d; ++i) {
      if (dp[full][i] < dp[full][best_end]) best_end = i;
    }
    size_t mask = full;
    int cur = best_end;
    while (cur >= 0) {
      best_path.push_back(cur);
      int prev = parent[mask][cur];
      mask ^= 1ULL << cur;
      cur = prev;
    }
    std::reverse(best_path.begin(), best_path.end());
  } else {
    // Greedy nearest-neighbor from every start, keep the cheapest path.
    double best_cost = std::numeric_limits<double>::infinity();
    for (int start = 0; start < d; ++start) {
      std::vector<int> path = {start};
      std::vector<bool> used(d, false);
      used[start] = true;
      double cost = 0.0;
      for (int step = 1; step < d; ++step) {
        int cur = path.back();
        int best_next = -1;
        for (int next = 0; next < d; ++next) {
          if (used[next]) continue;
          if (best_next < 0 || score[cur][next] < score[cur][best_next]) {
            best_next = next;
          }
        }
        cost += score[cur][best_next];
        used[best_next] = true;
        path.push_back(best_next);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_path = std::move(path);
      }
    }
  }

  std::vector<std::string> out;
  out.reserve(d);
  for (int i : best_path) out.push_back(attrs[i]);
  return out;
}

Result<double> TemplateSelector::TemplateCost(
    const std::vector<JoinSpecPtr>& joins,
    const std::vector<std::string>& order, const Options& options) {
  double total = 0.0;
  for (size_t i = 0; i + 1 < order.size(); ++i) {
    auto s = PairScore(joins, order[i], order[i + 1], options);
    if (!s.ok()) return s.status();
    total += s.value();
  }
  return total;
}

}  // namespace suj
