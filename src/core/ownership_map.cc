#include "core/ownership_map.h"

#include <mutex>

#include "common/logging.h"

namespace suj {

int OwnershipMap::Owner(const std::string& key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = owners_.find(key);
  return it == owners_.end() ? -1 : it->second;
}

ReconcileOutcome OwnershipMap::Reconcile(
    std::vector<OwnershipClaim>&& claims, std::vector<Tuple>&& tuples,
    std::vector<Tuple>* result, std::vector<std::string>* result_keys) {
  SUJ_CHECK(claims.size() == tuples.size());
  SUJ_CHECK(result != nullptr && result_keys != nullptr);
  SUJ_CHECK(result->size() == result_keys->size());
  ReconcileOutcome out;
  std::unique_lock<std::shared_mutex> lock(mu_);

  // Purges are tombstoned and compacted once at the end: a per-revision
  // erase would rescan the whole result per revision, and reconciliation
  // is the protocol's only sequential section — its cost bounds the
  // parallel speedup (Amdahl). The position index over standing copies is
  // built lazily on the first revision of the pass.
  std::vector<char> dead(result->size(), 0);
  std::unordered_map<std::string, std::vector<size_t>> positions;
  bool indexed = false;
  auto ensure_index = [&] {
    if (indexed) return;
    for (size_t k = 0; k < result_keys->size(); ++k) {
      if (!dead[k]) positions[(*result_keys)[k]].push_back(k);
    }
    indexed = true;
  };

  for (size_t i = 0; i < claims.size(); ++i) {
    OwnershipClaim& c = claims[i];
    SUJ_CHECK(c.join >= 0);
    auto it = owners_.find(c.key);
    if (it == owners_.end()) {
      owners_.emplace(c.key, c.join);
    } else if (it->second < c.join) {
      // An earlier join already owns the value: the sequential protocol
      // would have rejected this draw and retried the round. The claim is
      // dropped; the epoch driver re-requests the shortfall.
      ++out.dropped;
      continue;
    } else if (it->second > c.join) {
      // Revision: the value migrates to the earlier join; every stale
      // copy standing in the result — from any earlier epoch or earlier
      // in this one — is purged before the new copy is appended.
      ++out.revisions;
      ensure_index();
      auto pos = positions.find(c.key);
      if (pos != positions.end()) {
        for (size_t k : pos->second) {
          if (!dead[k]) {
            dead[k] = 1;
            ++out.purged;
          }
        }
        positions.erase(pos);
      }
      it->second = c.join;
    }
    dead.push_back(0);
    if (indexed) positions[c.key].push_back(result->size());
    result_keys->push_back(std::move(c.key));
    result->push_back(std::move(tuples[i]));
    ++out.appended;
  }

  if (out.purged > 0) {
    // Stable compaction preserving the global round order.
    size_t write = 0;
    for (size_t k = 0; k < result->size(); ++k) {
      if (dead[k]) continue;
      if (write != k) {
        (*result)[write] = std::move((*result)[k]);
        (*result_keys)[write] = std::move((*result_keys)[k]);
      }
      ++write;
    }
    result->resize(write);
    result_keys->resize(write);
  }
  ++epochs_;
  return out;
}

size_t OwnershipMap::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return owners_.size();
}

uint64_t OwnershipMap::epochs() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return epochs_;
}

}  // namespace suj
