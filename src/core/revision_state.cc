#include "core/revision_state.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace suj {

void RevisionState::Initialize(const UnionSampler* owner, uint64_t seed,
                               std::vector<double> weights) {
  SUJ_CHECK(bound_to_ == nullptr);
  SUJ_CHECK(owner != nullptr);
  bound_to_ = owner;
  epoch_seeds_ = Rng(seed);
  weights_ = std::move(weights);
}

void RevisionState::AppendFinalized(std::vector<Tuple>&& tuples) {
  finalized_ += tuples.size();
  if (buffer_head_ == buffer_.size()) {
    // Fully drained: recycle the storage instead of growing past it.
    buffer_.clear();
    buffer_head_ = 0;
  }
  buffer_.reserve(buffer_.size() + tuples.size());
  for (auto& t : tuples) buffer_.push_back(std::move(t));
  SUJ_CHECK(finalized_ == delivered_ + buffered());
}

size_t RevisionState::DrainInto(std::vector<Tuple>* out, size_t max) {
  const size_t take = std::min(max, buffered());
  for (size_t i = 0; i < take; ++i) {
    out->push_back(std::move(buffer_[buffer_head_ + i]));
  }
  buffer_head_ += take;
  delivered_ += take;
  SUJ_CHECK(finalized_ == delivered_ + buffered());
  return take;
}

}  // namespace suj
