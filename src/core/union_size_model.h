// UnionSizeModel: turns an OverlapEstimator into the parameters Algorithm 1
// consumes -- join sizes, cover sizes |J'_j|, and the union size |U|.
//
// The cover (§3.1) orders joins and assigns every union tuple to the FIRST
// join containing it: J'_i = J_i minus the union of earlier joins. By
// inclusion-exclusion over subsets Delta of the earlier joins,
//     |J'_i| = sum_{Delta subseteq {0..i-1}} (-1)^{|Delta|} |O_{Delta+{i}}|.
// The union size is computed both ways the paper defines it: via the
// k-overlap decomposition (Eq 1) and as sum_i |J'_i| (exactly equal with
// exact overlaps; they can differ under estimation, and the sampler
// normalizes by the cover sum so selection probabilities always sum to 1).

#ifndef SUJ_CORE_UNION_SIZE_MODEL_H_
#define SUJ_CORE_UNION_SIZE_MODEL_H_

#include <vector>

#include "core/k_overlap.h"
#include "core/overlap_estimator.h"

namespace suj {

/// \brief Warm-up output: every parameter of Algorithm 1 / Algorithm 2.
struct UnionEstimates {
  /// |J_j| estimates.
  std::vector<double> join_sizes;
  /// Cover sizes |J'_j| (clamped at >= 0 under estimation noise).
  std::vector<double> cover_sizes;
  /// Union size via Eq 1 (k-overlap decomposition).
  double union_size_eq1 = 0.0;
  /// Union size as the cover sum (== Eq 1 for exact overlaps).
  double union_size_cover = 0.0;
  /// The solved |A^k_j| table.
  KOverlapTable k_overlaps;

  /// Join-selection probabilities |J'_j| / sum |J'_j| for Algorithm 1.
  std::vector<double> SelectionWeights() const { return cover_sizes; }

  /// The |J_j|/|U| ratios whose estimation error Fig 4a/4b and Fig 5a
  /// report (union size per Eq 1).
  std::vector<double> JoinToUnionRatios() const;
};

/// Runs the warm-up: queries `estimator` for all 2^n - 1 subset overlaps
/// and assembles the estimates. n is capped at 20 (the paper notes the
/// powerset cost and that the number of input joins is small in practice).
Result<UnionEstimates> ComputeUnionEstimates(OverlapEstimator* estimator);

}  // namespace suj

#endif  // SUJ_CORE_UNION_SIZE_MODEL_H_
