#include "core/random_walk_overlap.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace suj {

Result<std::unique_ptr<RandomWalkOverlapEstimator>>
RandomWalkOverlapEstimator::Create(std::vector<JoinSpecPtr> joins,
                                   CompositeIndexCache* cache,
                                   Options options) {
  SUJ_RETURN_NOT_OK(ValidateUnionCompatible(joins));
  if (cache == nullptr) return Status::InvalidArgument("null index cache");
  if (joins.size() > 63) {
    return Status::InvalidArgument("at most 63 joins supported");
  }
  auto est = std::unique_ptr<RandomWalkOverlapEstimator>(
      new RandomWalkOverlapEstimator(std::move(joins), options));
  for (size_t j = 0; j < est->joins_.size(); ++j) {
    auto sampler = options.wander_factory
                       ? options.wander_factory(static_cast<int>(j))
                       : WanderJoinSampler::Create(est->joins_[j], cache);
    if (!sampler.ok()) return sampler.status();
    est->samplers_.push_back(std::move(sampler).value());
  }
  for (auto& sampler : est->samplers_) {
    est->estimators_.emplace_back(sampler.get());
  }
  if (!options.probers.empty()) {
    if (options.probers.size() != est->joins_.size()) {
      return Status::InvalidArgument(
          "shared probers do not match the join count");
    }
    est->probers_ = options.probers;
  } else {
    auto probers = BuildProbers(est->joins_);
    if (!probers.ok()) return probers.status();
    est->probers_ = std::move(probers).value();
  }
  est->records_.resize(est->joins_.size());
  return est;
}

SubsetMask RandomWalkOverlapEstimator::MembershipMask(const Tuple& tuple,
                                                      int origin) const {
  SubsetMask mask = 1ULL << origin;
  for (size_t i = 0; i < probers_.size(); ++i) {
    if (static_cast<int>(i) == origin) continue;
    if (probers_[i]->Contains(tuple)) mask |= 1ULL << i;
  }
  return mask;
}

Result<WalkOutcome> RandomWalkOverlapEstimator::WalkAndRecord(int join_index,
                                                              Rng& rng) {
  if (join_index < 0 || join_index >= num_joins()) {
    return Status::InvalidArgument("join index out of range");
  }
  WalkOutcome outcome = estimators_[join_index].Step(rng);
  if (outcome.success) {
    records_[join_index].push_back(
        {outcome.tuple, outcome.probability,
         MembershipMask(outcome.tuple, join_index)});
  }
  return outcome;
}

Status RandomWalkOverlapEstimator::Warmup(Rng& rng) {
  for (int j = 0; j < num_joins(); ++j) {
    auto& est = estimators_[j];
    while (est.num_walks() < options_.min_walks) {
      SUJ_RETURN_NOT_OK(WalkAndRecord(j, rng).status());
    }
    while (est.num_walks() < options_.max_walks &&
           est.estimator().RelativeHalfWidth(options_.confidence) >
               options_.relative_halfwidth) {
      SUJ_RETURN_NOT_OK(WalkAndRecord(j, rng).status());
    }
  }
  return Status::OK();
}

Result<double> RandomWalkOverlapEstimator::EstimateOverlap(
    SubsetMask subset) {
  if (subset == 0 || subset >= (1ULL << joins_.size())) {
    return Status::InvalidArgument("subset mask out of range");
  }
  std::vector<int> members = MaskToIndices(subset);

  // Fix the source join J_j in Delta (§6.2): prefer the member with the
  // most recorded walks for stability, ties to the lowest index.
  int source = members[0];
  for (int j : members) {
    if (records_[j].size() > records_[source].size()) source = j;
  }
  if (estimators_[source].num_walks() == 0) {
    return Status::FailedPrecondition(
        "random-walk estimator has no walks; call Warmup() first");
  }

  // Direct Horvitz-Thompson estimate of the overlap: walks landing in every
  // member join contribute 1/p, divided by the total walk count. This
  // equals |J_j|_HT * |S'_cap| / |S'_j| (Eq 2) algebraically.
  double overlap_weight = 0.0;
  for (const auto& rec : records_[source]) {
    if ((rec.membership & subset) == subset) {
      overlap_weight += 1.0 / rec.probability;
    }
  }
  return overlap_weight /
         static_cast<double>(estimators_[source].num_walks());
}

Result<double> RandomWalkOverlapEstimator::OverlapHalfWidth(
    SubsetMask subset, double confidence) const {
  if (subset == 0 || subset >= (1ULL << joins_.size())) {
    return Status::InvalidArgument("subset mask out of range");
  }
  std::vector<int> members = MaskToIndices(subset);
  // Eq 3: combine, over member joins, the size-estimator moments T_n
  // (mean), T_{n,2} (variance) with the binomial overlap-ratio variance
  // p(1-p).
  double sum = 0.0;
  size_t n_total = 0;
  for (int j : members) {
    const auto& stats = estimators_[j].estimator().stats();
    if (stats.count() == 0) continue;
    n_total += stats.count();
    double t_n = stats.mean();
    double t_n2 = stats.variance();
    // Ratio of source-join walks that land in the full subset.
    double weight_all = 0.0, weight_in = 0.0;
    for (const auto& rec : records_[j]) {
      double w = 1.0 / rec.probability;
      weight_all += w;
      if ((rec.membership & subset) == subset) weight_in += w;
    }
    double p_hat = weight_all > 0.0 ? weight_in / weight_all : 0.0;
    sum += t_n2 * p_hat * (1.0 - p_hat) + t_n2 * p_hat +
           t_n * p_hat * (1.0 - p_hat);
  }
  if (n_total == 0) return std::numeric_limits<double>::infinity();
  return ZCritical(confidence) *
         std::sqrt(sum / static_cast<double>(n_total));
}

double RandomWalkOverlapEstimator::JoinSizeRelativeHalfWidth(
    int join_index, double confidence) const {
  return estimators_[join_index].estimator().RelativeHalfWidth(confidence);
}

}  // namespace suj
