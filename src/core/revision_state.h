// RevisionState: resumable cross-call state of the epoch-reconciled
// revision protocol (the session-lived form of Algorithm 1,
// decentralized).
//
// UnionSampler::SampleRevisionParallel keeps its OwnershipMap, epoch ramp,
// and epoch-seed stream PER CALL, mirroring the sequential loop — so a
// streaming session re-learns the cover from scratch on every chunk.
// RevisionState lifts all of that into an object the caller owns and
// threads through repeated UnionSampler::Sample(n, rng, state) calls:
// the learned cover, the epoch schedule, and the epoch-seed stream all
// continue where the previous call stopped.
//
// ## The deterministic-stream contract
//
// A resumed protocol is only useful if chunking is invisible: splitting n
// draws across K calls must deliver the byte-identical sequence a single
// n-draw call would, at every worker-thread count. That forces every
// input of the generation process to be a function of the STATE, never of
// the call pattern:
//
//  * Epoch sizes follow a pure ramp — batch_size * 4^e, capped at
//    batch_size * 16 — never clamped by the current call's shortfall (a
//    shortfall clamp would cut different batch layouts for different
//    chunkings). An epoch that overshoots the call's need parks the
//    surplus in the state's buffer; the next call drains the buffer
//    before generating again. The cap bounds both the surplus a session
//    can buffer and the latency of the one serial reconcile pass.
//  * Epoch e's executor seed is the e-th value of the state's seed
//    stream, fixed at initialization from ONE draw of the caller's RNG.
//    Continuation calls consume nothing from the caller's RNG.
//  * Reconciliation finalizes each epoch: a revision purges stale copies
//    of the re-assigned value from the CURRENT epoch's claims only (the
//    within-epoch reach the sequential protocol has over its pending
//    round), and the epoch's survivors append to the buffer as immutable
//    output. Tuples already finalized — delivered or buffered — are
//    beyond purging, exactly the guarantee the per-call protocol already
//    makes for tuples delivered by earlier calls; the re-assignment
//    itself still lands in the ownership map, so later epochs reject the
//    stale join immediately. Confining the purge horizon to the epoch is
//    what makes the emitted stream prefix-stable, and prefix-stability is
//    what makes chunking invisible. The residual effect — stale copies
//    accepted before a value's ownership was learned stand in the output
//    — is the same constant-NUMBER-of-draws learning transient the epoch
//    ramp already bounds (chi-square-verified in uniformity_test).
//  * Cover abandonment discovered during an epoch folds into the state's
//    selection weights (and the owning sampler's persistent exclusion
//    set) BETWEEN epochs — the deterministic serial point — so it takes
//    effect from the next epoch no matter how calls are chunked. The
//    fan-out itself still never touches the exclusion set; the driver
//    SUJ_CHECKs that, the same invariant the per-call paths assert at
//    their per-call boundary.
//
// ## Lifecycle (call -> session -> eviction)
//
// A state is created empty, binds to the first UnionSampler it is used
// with (resuming on a different sampler is refused), and lives as long as
// the caller wants the protocol to continue — for service sessions,
// SamplingSession owns one for its lifetime, so chunked SampleStream
// delivery and repeated Sample requests are one uninterrupted protocol.
// The state also carries the session's worker-context pool (exec_cache_),
// so the sampler factory runs pool-width times per session rather than
// per call. Abandoning a state mid-stream is always safe: it owns values
// (tuples, keys, weights) and its own worker contexts — whose samplers
// hold shared ownership of whatever indexes the factory captured — and
// points into nothing outside itself, so destroying it — on session
// close, eviction, or error — frees the learned cover, any undelivered
// surplus, and the pooled contexts, and nothing else. The sampler
// notices nothing; a fresh state started afterwards simply re-learns
// from the sampler's current (persisted) exclusion set.

#ifndef SUJ_CORE_REVISION_STATE_H_
#define SUJ_CORE_REVISION_STATE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/ownership_map.h"
#include "storage/tuple.h"

namespace suj {

class UnionSampler;

/// \brief Resumable revision-protocol state carried across Sample calls.
class RevisionState {
 public:
  RevisionState() = default;
  // Not copyable or movable: the bound sampler holds no pointer back, but
  // the OwnershipMap member owns a mutex.
  RevisionState(const RevisionState&) = delete;
  RevisionState& operator=(const RevisionState&) = delete;

  /// True once the first Sample call has seeded the state.
  bool initialized() const { return bound_to_ != nullptr; }

  /// Epochs generated so far (the position in the epoch-size ramp).
  uint64_t epochs_started() const { return epoch_index_; }

  /// Finalized tuples generated ahead of demand and not yet delivered.
  size_t buffered() const { return buffer_.size() - buffer_head_; }

  /// Tuples handed out across all Sample calls on this state.
  uint64_t delivered() const { return delivered_; }

  /// Distinct values with a reconciled owner in the carried cover.
  size_t learned_values() const { return ownership_.size(); }

 private:
  friend class UnionSampler;

  /// Binds to `owner`, fixes the epoch-seed stream, and freezes the
  /// initial selection weights (the owner's estimates minus its already
  /// abandoned covers).
  void Initialize(const UnionSampler* owner, uint64_t seed,
                  std::vector<double> weights);

  /// Appends one reconciled epoch's surviving tuples as finalized output.
  void AppendFinalized(std::vector<Tuple>&& tuples);

  /// Moves up to `max` finalized tuples into `*out`; returns the count.
  size_t DrainInto(std::vector<Tuple>* out, size_t max);

  const UnionSampler* bound_to_ = nullptr;
  /// Epoch e's executor seed is the e-th Next() of this stream.
  Rng epoch_seeds_{0};
  uint64_t epoch_index_ = 0;
  /// The carried reconciled cover (value -> owning join).
  OwnershipMap ownership_;
  /// Live selection weights: initialization freezes them from the bound
  /// sampler's estimates; abandonment folds zeros in between epochs.
  std::vector<double> weights_;
  /// Finalized, undelivered tuples ([buffer_head_, end) is live).
  std::vector<Tuple> buffer_;
  size_t buffer_head_ = 0;
  uint64_t delivered_ = 0;
  /// Total finalized ever (delivered_ + buffered(), SUJ_CHECK-maintained).
  uint64_t finalized_ = 0;
  /// Executor-layer cache carried across calls: the bound sampler parks
  /// its RevisionWorkerSet (worker contexts + WorkerContextPool) here so
  /// a session's sampler factory runs pool-width times total, not per
  /// resumed call. Opaque (the set is private to union_sampler.cc); the
  /// shared_ptr's deleter tears it down with the state. The contexts
  /// point only at this state's own members (weights_, ownership_), so
  /// carrying them is safe for exactly as long as the state lives.
  std::shared_ptr<void> exec_cache_;
};

}  // namespace suj

#endif  // SUJ_CORE_REVISION_STATE_H_
