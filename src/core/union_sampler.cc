#include "core/union_sampler.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <unordered_set>

#include "common/alias_table.h"
#include "common/logging.h"
#include "core/ownership_map.h"
#include "core/revision_state.h"
#include "exec/parallel_executor.h"
#include "exec/worker_context_pool.h"
#include "obs/metrics.h"

namespace suj {

namespace {

using Clock = std::chrono::steady_clock;

// Folds one Sample call's stats_ deltas into the process-wide obs
// counters at scope exit. Deliberately OUTSIDE the sampling loop: the
// hot path (rounds, draws, accepts) stays untouched, and the obs cost
// is a handful of relaxed adds per CALL — which is what keeps the
// metrics-on/metrics-off perf gate trivially within bounds.
class ScopedCoreStatsExport {
 public:
  explicit ScopedCoreStatsExport(const UnionSampleStats* stats)
      : stats_(stats),
        rounds_(stats->rounds),
        accepted_(stats->accepted),
        rejected_cover_(stats->rejected_cover),
        revisions_(stats->revisions),
        reconcile_dropped_(stats->reconcile_dropped),
        reconciliation_seconds_(stats->reconciliation_seconds) {}

  ~ScopedCoreStatsExport() {
    static obs::Counter* const rounds =
        obs::MetricsRegistry::Global().GetCounter("suj_core_rounds_total");
    static obs::Counter* const accepted =
        obs::MetricsRegistry::Global().GetCounter("suj_core_accepted_total");
    static obs::Counter* const rejected =
        obs::MetricsRegistry::Global().GetCounter(
            "suj_core_rejected_cover_total");
    static obs::Counter* const revisions =
        obs::MetricsRegistry::Global().GetCounter("suj_core_revisions_total");
    static obs::Counter* const reconcile_dropped =
        obs::MetricsRegistry::Global().GetCounter(
            "suj_core_reconcile_dropped_total");
    static obs::Histogram* const reconcile_ns =
        obs::MetricsRegistry::Global().GetHistogram(
            "suj_core_reconcile_ns", obs::Histogram::DefaultLatencyBoundsNs());
    rounds->Increment(stats_->rounds - rounds_);
    accepted->Increment(stats_->accepted - accepted_);
    rejected->Increment(stats_->rejected_cover - rejected_cover_);
    revisions->Increment(stats_->revisions - revisions_);
    reconcile_dropped->Increment(stats_->reconcile_dropped -
                                 reconcile_dropped_);
    const double reconcile_delta_s =
        stats_->reconciliation_seconds - reconciliation_seconds_;
    if (reconcile_delta_s > 0) {
      reconcile_ns->Observe(static_cast<uint64_t>(reconcile_delta_s * 1e9));
    }
  }

 private:
  const UnionSampleStats* stats_;
  uint64_t rounds_;
  uint64_t accepted_;
  uint64_t rejected_cover_;
  uint64_t revisions_;
  uint64_t reconcile_dropped_;
  double reconciliation_seconds_;
};

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Status ValidateSamplerSet(
    const std::vector<JoinSpecPtr>& joins,
    const std::vector<std::unique_ptr<JoinSampler>>& samplers) {
  SUJ_RETURN_NOT_OK(ValidateUnionCompatible(joins));
  if (samplers.size() != joins.size()) {
    return Status::InvalidArgument("need exactly one sampler per join");
  }
  for (size_t j = 0; j < joins.size(); ++j) {
    if (samplers[j] == nullptr) {
      return Status::InvalidArgument("null sampler");
    }
    if (samplers[j]->join() != joins[j]) {
      return Status::InvalidArgument(
          "sampler " + std::to_string(j) + " is not bound to join '" +
          joins[j]->name() + "'");
    }
  }
  return Status::OK();
}

// One worker's context for the parallel revision protocol: the sequential
// revision loop run per batch against (epoch snapshot ∘ batch-local
// overlay) ownership. Everything mutable is per-batch or per-worker; the
// shared OwnershipMap is only read (its snapshot is immutable during the
// fan-out), so batch output is a pure function of (seed, batch index,
// snapshot) and the concatenation is thread-count independent.
//
// Contexts live in a WorkerContextPool for a whole Sample call and serve
// EVERY epoch of it: the ownership view reads the live (between-epochs
// reconciled) map through a stable pointer, `weights` points at storage
// the epoch driver may update between fan-outs (frozen per call on the
// legacy path, abandonment-folded per epoch on the resumable path), and
// the per-epoch claim journal is re-bound before each fan-out via
// BindEpochSlots. Only stats_ accumulates across epochs.
class RevisionBatchSampler : public BatchSampler {
 public:
  RevisionBatchSampler(std::vector<std::unique_ptr<JoinSampler>> samplers,
                       const std::vector<double>* weights,
                       OwnershipMap::View snapshot,
                       uint64_t max_draws_per_round,
                       std::vector<uint8_t>* abandoned_sink)
      : samplers_(std::move(samplers)),
        frozen_weights_(weights),
        snapshot_(snapshot),
        max_draws_per_round_(max_draws_per_round),
        abandoned_sink_(abandoned_sink) {}

  /// Points the claim journal at the new epoch's slots (one per batch).
  /// Called serially between fan-outs by the epoch driver.
  void BindEpochSlots(std::vector<ClaimBatch>* slots) { claim_slots_ = slots; }

  Result<std::vector<Tuple>> SampleBatch(size_t, Rng&) override {
    return Status::Internal(
        "revision batches journal per-batch claims; the executor must use "
        "the batch-indexed entry point");
  }

  Result<std::vector<Tuple>> SampleBatchAt(size_t batch_index, size_t count,
                                           Rng& rng) override {
    SUJ_CHECK(claim_slots_ != nullptr);  // BindEpochSlots precedes fan-out
    // Batch-local view: frozen call-start weights (abandonment discovered
    // here is sunk per worker and reset per batch, like the oracle path)
    // and a tentative-claim overlay over the epoch's reconciled snapshot.
    // Selection runs O(1) through an alias table over the weight copy;
    // the build consumes no RNG, so batch output stays a pure function of
    // (seed, batch index).
    auto selector = WeightedSelector::Build(*frozen_weights_);
    if (!selector.ok()) {
      return Status::Internal(
          "every join's cover was abandoned; warm-up estimates are "
          "inconsistent with the data");
    }
    std::unordered_map<std::string, int> local;
    std::vector<Tuple> tuples;
    std::vector<std::string> keys;
    ClaimBatch claims;
    tuples.reserve(count);
    keys.reserve(count);
    claims.reserve(count);
    while (tuples.size() < count) {
      ++stats_.rounds;
      int j = static_cast<int>(selector->Sample(rng));
      bool round_done = false;
      for (uint64_t draw = 0;
           draw < max_draws_per_round_ && !round_done; ++draw) {
        auto start = Clock::now();
        ++stats_.join_draws;
        std::optional<Tuple> t = samplers_[static_cast<size_t>(j)]
                                     ->TrySample(rng);
        if (!t.has_value()) {
          stats_.rejected_seconds += SecondsSince(start);
          continue;  // join-level rejection; retry the same join
        }
        std::string key = t->Encode();
        auto it = local.find(key);
        if (it != local.end()) {
          // The batch already holds copies of this value.
          if (it->second < j) {
            ++stats_.rejected_cover;
            stats_.rejected_seconds += SecondsSince(start);
            continue;
          }
          if (it->second > j) {
            // Batch-local revision: purge the batch's stale copies (and
            // their claims) now; stale copies in OTHER batches are the
            // reconciliation pass's job.
            ++stats_.revisions;
            size_t before = tuples.size();
            for (size_t k = tuples.size(); k-- > 0;) {
              if (keys[k] == key) {
                tuples.erase(tuples.begin() + static_cast<ptrdiff_t>(k));
                keys.erase(keys.begin() + static_cast<ptrdiff_t>(k));
                claims.erase(claims.begin() + static_cast<ptrdiff_t>(k));
              }
            }
            stats_.removed_by_revision += before - tuples.size();
          }
        } else {
          int g = snapshot_.Owner(key);
          if (g >= 0 && g < j) {
            // Snapshot assigns the value to an earlier join: same
            // rejection the sequential loop makes once it has learned.
            ++stats_.rejected_cover;
            stats_.rejected_seconds += SecondsSince(start);
            continue;
          }
          // g == -1 (unclaimed) or g > j: accept; a g > j conflict is the
          // reconciliation pass's revision to perform (and count) — this
          // batch holds no stale copies to purge.
        }
        local[key] = j;
        claims.push_back(OwnershipClaim{key, j});
        keys.push_back(std::move(key));
        tuples.push_back(std::move(*t));
        ++stats_.accepted;
        stats_.accepted_seconds += SecondsSince(start);
        round_done = true;
      }
      if (!round_done) {
        ++stats_.abandoned_rounds;
        (*abandoned_sink_)[static_cast<size_t>(j)] = 1;
        if (!selector->Zero(static_cast<size_t>(j)).ok()) {
          return Status::Internal(
              "every join's cover was abandoned; warm-up estimates are "
              "inconsistent with the data");
        }
      }
    }
    (*claim_slots_)[batch_index] = std::move(claims);
    return tuples;
  }

  UnionSampleStats stats() const override { return stats_; }

 private:
  std::vector<std::unique_ptr<JoinSampler>> samplers_;
  const std::vector<double>* frozen_weights_;
  OwnershipMap::View snapshot_;
  uint64_t max_draws_per_round_;
  std::vector<ClaimBatch>* claim_slots_ = nullptr;
  std::vector<uint8_t>* abandoned_sink_;
  UnionSampleStats stats_;
};

// Resumable epoch ramp: batch * 4^e, capped at batch << kResumableRampCap
// (see SampleRevisionResumable; Options::max_revision_surplus can lower
// the effective cap). The cap also bounds how many batches one epoch can
// fan out, which bounds the useful worker-pool width.
constexpr uint64_t kResumableRampCap = 4;

// One call's revision fan-out machinery, shared by the per-call and
// resumable epoch drivers: per-worker abandonment sinks, the concrete
// contexts (for per-epoch claim-slot rebinding), and the WorkerContextPool
// that owns them. Moving the struct is safe: the contexts hold pointers to
// the sink vectors' heap elements, which std::vector moves leave in place.
struct RevisionWorkerSet {
  std::vector<std::vector<uint8_t>> abandoned;   // one sink per worker
  std::vector<RevisionBatchSampler*> contexts;   // borrowed from `pool`
  std::optional<WorkerContextPool> pool;
};

// Builds `width` revision worker contexts over `sampler_factory` — the
// once-per-call construction both drivers rely on. `weights` and
// `snapshot` must outlive the set; the snapshot reads the live map, so
// between-epoch reconciliations are visible to later fan-outs.
Result<RevisionWorkerSet> BuildRevisionWorkers(
    const std::vector<JoinSpecPtr>& joins,
    const UnionSampler::JoinSamplerFactory& sampler_factory,
    uint64_t max_draws_per_round, size_t width,
    const std::vector<double>* weights, OwnershipMap::View snapshot) {
  RevisionWorkerSet set;
  set.abandoned.assign(width, std::vector<uint8_t>(joins.size(), 0));
  set.contexts.assign(width, nullptr);
  auto factory = [&](size_t worker) -> Result<std::unique_ptr<BatchSampler>> {
    if (worker >= width) {
      return Status::Internal("worker index out of range");
    }
    auto samplers = sampler_factory();
    if (!samplers.ok()) return samplers.status();
    SUJ_RETURN_NOT_OK(ValidateSamplerSet(joins, *samplers));
    auto context = std::unique_ptr<RevisionBatchSampler>(
        new RevisionBatchSampler(std::move(*samplers), weights, snapshot,
                                 max_draws_per_round,
                                 &set.abandoned[worker]));
    set.contexts[worker] = context.get();
    return std::unique_ptr<BatchSampler>(std::move(context));
  };
  auto pool = WorkerContextPool::Build(width, factory);
  if (!pool.ok()) return pool.status();
  set.pool.emplace(std::move(*pool));
  return set;
}

}  // namespace

Status UnionSampleStats::MergeFrom(const UnionSampleStats& other) {
  if (plan_id != 0 && other.plan_id != 0 && plan_id != other.plan_id) {
    return Status::InvalidArgument(
        "refusing to merge stats of plan " + std::to_string(other.plan_id) +
        " into stats of plan " + std::to_string(plan_id) +
        "; per-query accounting would be corrupted");
  }
  if (plan_id == 0) plan_id = other.plan_id;
  rounds += other.rounds;
  join_draws += other.join_draws;
  accepted += other.accepted;
  rejected_cover += other.rejected_cover;
  revisions += other.revisions;
  removed_by_revision += other.removed_by_revision;
  abandoned_rounds += other.abandoned_rounds;
  accepted_seconds += other.accepted_seconds;
  rejected_seconds += other.rejected_seconds;
  parallel_batches += other.parallel_batches;
  parallel_workers += other.parallel_workers;
  parallel_clipped += other.parallel_clipped;
  parallel_seconds += other.parallel_seconds;
  revision_epochs += other.revision_epochs;
  reconcile_dropped += other.reconcile_dropped;
  reconciliation_seconds += other.reconciliation_seconds;
  revision_surplus_high_water =
      std::max(revision_surplus_high_water, other.revision_surplus_high_water);
  return Status::OK();
}

Result<std::unique_ptr<UnionSampler>> UnionSampler::Create(
    std::vector<JoinSpecPtr> joins,
    std::vector<std::unique_ptr<JoinSampler>> samplers,
    UnionEstimates estimates, std::vector<JoinMembershipProberPtr> probers,
    Options options) {
  if (options.sampler_factory != nullptr) {
    // Executor path: workers build their own sampler sets from the
    // factory (each validated by the per-worker Create). A Create-time
    // set would be dead weight — Sample() never touches it and its stats
    // would read all-zero — so the ambiguous combination is rejected.
    if (!samplers.empty()) {
      return Status::InvalidArgument(
          "pass an empty sampler set when sampler_factory is set; "
          "Create-time samplers are never used on the executor path");
    }
    SUJ_RETURN_NOT_OK(ValidateUnionCompatible(joins));
  } else {
    SUJ_RETURN_NOT_OK(ValidateSamplerSet(joins, samplers));
  }
  if (estimates.cover_sizes.size() != joins.size()) {
    return Status::InvalidArgument("estimates do not match the join count");
  }
  if (options.mode == Mode::kMembershipOracle &&
      probers.size() != joins.size()) {
    return Status::InvalidArgument(
        "membership-oracle mode needs one prober per join");
  }
  double total_cover = 0.0;
  for (double c : estimates.cover_sizes) total_cover += c;
  if (total_cover <= 0.0) {
    return Status::FailedPrecondition(
        "all cover sizes are zero; the union is (estimated) empty");
  }
  if (options.sampler_factory != nullptr) {
    // Both modes fan out: oracle ownership is a pure function, revision
    // ownership runs the epoch-reconciled protocol (ownership_map.h).
    if (options.batch_size == 0) {
      return Status::InvalidArgument("batch_size must be positive");
    }
  } else if (options.num_threads != 1) {
    return Status::InvalidArgument(
        "num_threads != 1 requires a sampler_factory for per-worker "
        "samplers");
  }
  return std::unique_ptr<UnionSampler>(
      new UnionSampler(std::move(joins), std::move(samplers),
                       std::move(estimates), std::move(probers), options));
}

Result<std::vector<Tuple>> UnionSampler::SampleParallel(size_t n,
                                                        uint64_t seed) {
  // Each worker owns a private sequential UnionSampler over the shared
  // joins/probers and its own sampler set. Oracle-mode batches carry no
  // cross-batch state, so batch output depends only on the batch RNG —
  // the executor's determinism contract.
  //
  // Abandonment and resumability: covers the parent already knows are
  // dead are frozen out of the worker estimates up front, so later calls
  // never re-pay for them. A cover newly abandoned DURING this call is
  // reported through a per-worker sink and folded into disabled_ only
  // after the whole fan-out; inside the fan-out every batch restarts
  // from the frozen set (the sink records, then resets, the worker's
  // discovery), because batch contents must never depend on which
  // worker ran the previous batches.
  UnionEstimates frozen = estimates_;
  double remaining = 0.0;
  for (size_t j = 0; j < joins_.size(); ++j) {
    if (disabled_[j]) frozen.cover_sizes[j] = 0.0;
    remaining += frozen.cover_sizes[j];
  }
  if (remaining <= 0.0) {
    return Status::Internal(
        "every join's cover was abandoned; warm-up estimates are "
        "inconsistent with the data");
  }

  class WorkerBatchSampler : public BatchSampler {
   public:
    WorkerBatchSampler(std::unique_ptr<UnionSampler> inner,
                       std::vector<uint8_t>* abandoned_sink)
        : inner_(std::move(inner)), abandoned_sink_(abandoned_sink) {}
    Result<std::vector<Tuple>> SampleBatch(size_t count, Rng& rng) override {
      auto result = inner_->Sample(count, rng);
      for (size_t j = 0; j < inner_->disabled_.size(); ++j) {
        if (inner_->disabled_[j]) {
          (*abandoned_sink_)[j] = 1;
          inner_->disabled_[j] = false;  // next batch: frozen set again
        }
      }
      return result;
    }
    UnionSampleStats stats() const override { return inner_->stats(); }

   private:
    std::unique_ptr<UnionSampler> inner_;
    std::vector<uint8_t>* abandoned_sink_;
  };

  ParallelUnionExecutor::Options exec_options;
  exec_options.num_threads = options_.num_threads;
  exec_options.batch_size = options_.batch_size;
  ParallelUnionExecutor executor(exec_options);
  const size_t workers = executor.EffectiveThreads(n);

  std::vector<std::vector<uint8_t>> worker_abandoned(
      workers, std::vector<uint8_t>(joins_.size(), 0));
  Options worker_options = options_;
  worker_options.num_threads = 1;
  worker_options.sampler_factory = nullptr;
  auto factory = [&](size_t worker) -> Result<std::unique_ptr<BatchSampler>> {
    if (worker >= workers) {
      return Status::Internal("worker index out of range");
    }
    auto samplers = options_.sampler_factory();
    if (!samplers.ok()) return samplers.status();
    auto inner = Create(joins_, std::move(*samplers), frozen, probers_,
                        worker_options);
    if (!inner.ok()) return inner.status();
    return std::unique_ptr<BatchSampler>(new WorkerBatchSampler(
        std::move(*inner), &worker_abandoned[worker]));
  };

  const std::vector<bool> call_start_disabled = disabled_;
  auto result = executor.Execute(n, seed, factory, &stats_);
  if (!result.ok()) return result.status();
  // The documented abandonment boundary: a cover abandoned DURING this
  // call takes effect only from the next call, so the exclusion set must
  // be untouched until this post-fan-out fold (anything else would let
  // batch contents depend on scheduling).
  SUJ_CHECK(disabled_ == call_start_disabled);
  for (const auto& mask : worker_abandoned) {
    for (size_t j = 0; j < joins_.size(); ++j) {
      if (mask[j]) disabled_[j] = true;
    }
  }
  return result;
}

Result<std::vector<Tuple>> UnionSampler::SampleRevisionParallel(
    size_t n, uint64_t seed) {
  // Epoch-reconciled revision protocol. Each epoch fans the current
  // shortfall out as batches; workers run the revision loop against an
  // immutable snapshot of the reconciled ownership map plus batch-local
  // claims; the claims are journaled per batch and replayed between
  // epochs in global round order (batch order, then acceptance order),
  // applying revisions and purges exactly as the sequential protocol
  // would. Epoch count, batch layout, and replay order are all functions
  // of (seed, n) only, so the delivered sequence is byte-identical for
  // every thread count.
  //
  // Like the oracle fan-out, the exclusion set is frozen for the whole
  // call: abandonment discovered in any epoch is sunk per worker and
  // folded into disabled_ only after the final epoch.
  UnionEstimates frozen = estimates_;
  double remaining = 0.0;
  for (size_t j = 0; j < joins_.size(); ++j) {
    if (disabled_[j]) frozen.cover_sizes[j] = 0.0;
    remaining += frozen.cover_sizes[j];
  }
  if (remaining <= 0.0) {
    return Status::Internal(
        "every join's cover was abandoned; warm-up estimates are "
        "inconsistent with the data");
  }
  const std::vector<bool> call_start_disabled = disabled_;

  // Per-call revision state, mirroring the sequential loop's per-call
  // owner map (ownership learned here cannot purge tuples delivered by
  // earlier calls, so it is not carried over; abandonment is).
  OwnershipMap ownership;
  std::vector<Tuple> result;
  std::vector<std::string> result_keys;
  result.reserve(n);
  result_keys.reserve(n);

  std::vector<uint8_t> abandoned(joins_.size(), 0);
  // Epoch e draws its executor seed from this stream; epoch boundaries
  // are deterministic, so the whole schedule is a function of `seed`.
  Rng epoch_seeds(seed);
  // Progress guard: an epoch whose reconciliation nets no new standing
  // tuples is possible (every claim collided with an earlier-join claim
  // of the same epoch), but each collision teaches the map the winning
  // owner, so stalls cannot persist; a run of them means the sampler
  // configuration is broken.
  const int kMaxStalledEpochs = 8;
  int stalled = 0;

  // Executor and worker-context pool are built ONCE for the call and
  // reused by every epoch's fan-out: the factory (and its sampler-set
  // construction) runs exactly pool-width times per call, not per epoch.
  // The contexts read the reconciled map through a stable view and the
  // frozen weights through a stable pointer; only the per-epoch claim
  // journal is re-bound before each fan-out. Width is clamped to what
  // the request can engage, as the per-epoch construction was.
  ParallelUnionExecutor::Options exec_options;
  exec_options.num_threads = options_.num_threads;
  exec_options.batch_size = options_.batch_size;
  ParallelUnionExecutor executor(exec_options);
  auto workers = BuildRevisionWorkers(
      joins_, options_.sampler_factory, options_.max_draws_per_round,
      executor.EffectiveThreads(n), &frozen.cover_sizes,
      ownership.UnsynchronizedView());
  if (!workers.ok()) return workers.status();

  uint64_t epoch_index = 0;
  auto run_epochs = [&]() -> Status {
    while (result.size() < n) {
      const size_t shortfall = n - result.size();
      // Learning ramp: epoch sizes grow geometrically from one batch. An
      // epoch's workers sample against the ownership learned BEFORE it,
      // so fanning the whole request out at once would let a constant
      // FRACTION of claims die at reconciliation (weight-proportional
      // re-draws then over-represent earlier joins — a bias that grows
      // with n). Small early epochs make the unlearned phase a constant
      // NUMBER of draws instead, matching the sequential protocol's
      // transient, while late (large) epochs carry the parallel work.
      const size_t ramp =
          options_.batch_size << std::min<uint64_t>(2 * epoch_index, 24);
      const size_t need = std::min(shortfall, ramp);
      ++epoch_index;
      const size_t num_batches =
          (need + options_.batch_size - 1) / options_.batch_size;

      std::vector<ClaimBatch> claim_slots(num_batches);
      for (auto* context : workers->contexts) {
        context->BindEpochSlots(&claim_slots);
      }

      auto drawn = executor.Execute(need, epoch_seeds.Next(),
                                    *workers->pool, &stats_);
      if (!drawn.ok()) return drawn.status();
      SUJ_CHECK(disabled_ == call_start_disabled);
      for (const auto& mask : workers->abandoned) {
        for (size_t j = 0; j < joins_.size(); ++j) {
          if (mask[j]) abandoned[j] = 1;
        }
      }

      // Flatten the per-batch claim journals in batch order; the
      // executor returned the tuples in the same order, one claim per
      // tuple.
      std::vector<OwnershipClaim> claims;
      claims.reserve(drawn->size());
      for (auto& slot : claim_slots) {
        for (auto& claim : slot) claims.push_back(std::move(claim));
      }
      SUJ_CHECK(claims.size() == drawn->size());

      auto reconcile_start = Clock::now();
      const size_t before = result.size();
      ReconcileOutcome outcome = ownership.Reconcile(
          std::move(claims), std::move(*drawn), &result, &result_keys);
      stats_.reconciliation_seconds += SecondsSince(reconcile_start);
      ++stats_.revision_epochs;
      stats_.revisions += outcome.revisions;
      stats_.removed_by_revision += outcome.purged;
      stats_.reconcile_dropped += outcome.dropped;

      if (result.size() <= before) {
        if (++stalled >= kMaxStalledEpochs) {
          return Status::Internal(
              "revision reconciliation made no progress for " +
              std::to_string(stalled) +
              " consecutive epochs; the join samplers and cover estimates "
              "are inconsistent");
        }
      } else {
        stalled = 0;
      }
    }
    return Status::OK();
  };
  const Status run_status = run_epochs();

  // The contexts served every epoch, so their cumulative stats (and the
  // context count) fold in exactly once — error or not, so a failing
  // call never loses its completed epochs' accounting.
  const Status merge_status = workers->pool->MergeStatsInto(&stats_);
  stats_.parallel_workers += workers->pool->size();
  SUJ_RETURN_NOT_OK(run_status);
  SUJ_RETURN_NOT_OK(merge_status);

  for (size_t j = 0; j < joins_.size(); ++j) {
    if (abandoned[j]) disabled_[j] = true;
  }
  return result;
}

Result<std::vector<Tuple>> UnionSampler::SampleRevisionResumable(
    size_t n, Rng& rng, RevisionState& state) {
  // The session-lived protocol: everything the per-call path keeps per
  // call — ownership map, epoch ramp, epoch seeds, selection weights —
  // lives in `state` and continues across calls, and every generation
  // input is a function of the state alone. Splitting n draws across any
  // sequence of calls therefore delivers the byte-identical stream a
  // single call would, at every thread count (the contract documented in
  // core/revision_state.h).
  if (!state.initialized()) {
    std::vector<double> weights = estimates_.cover_sizes;
    double remaining = 0.0;
    for (size_t j = 0; j < joins_.size(); ++j) {
      if (disabled_[j]) weights[j] = 0.0;
      remaining += weights[j];
    }
    if (remaining <= 0.0) {
      return Status::Internal(
          "every join's cover was abandoned; warm-up estimates are "
          "inconsistent with the data");
    }
    // The ONE draw this state ever takes from the caller's RNG.
    state.Initialize(this, rng.Next(), std::move(weights));
  }

  // Effective ramp cap: the default kResumableRampCap, lowered when
  // Options::max_revision_surplus bounds the surplus so the LARGEST epoch
  // (= the worst-case overshoot past a call's demand) fits under the
  // bound, floored at one batch. A pure function of the options — never
  // of the call pattern — so every chunking sees the same epoch schedule.
  uint64_t ramp_cap = kResumableRampCap;
  if (options_.max_revision_surplus > 0) {
    uint64_t cap = 0;
    while (cap < kResumableRampCap &&
           (options_.batch_size << (cap + 1)) <=
               options_.max_revision_surplus) {
      ++cap;
    }
    ramp_cap = cap;
  }

  if (state.buffered() < n) {
    // Generate until the buffer covers the call. The executor is per-call
    // (it is just options), but the worker-context pool is carried in the
    // STATE: the first generating call builds it (pool-width factory
    // invocations; a call served entirely from the buffer builds none)
    // and every later call of the session reuses it across all of its
    // epochs. Width is clamped to the most batches one capped epoch can
    // fan out.
    ParallelUnionExecutor::Options exec_options;
    exec_options.num_threads = options_.num_threads;
    exec_options.batch_size = options_.batch_size;
    ParallelUnionExecutor executor(exec_options);
    const size_t pool_width =
        std::min(executor.options().num_threads, size_t{1} << ramp_cap);
    auto workers =
        std::static_pointer_cast<RevisionWorkerSet>(state.exec_cache_);
    if (workers == nullptr) {
      auto built = BuildRevisionWorkers(
          joins_, options_.sampler_factory, options_.max_draws_per_round,
          pool_width, &state.weights_,
          state.ownership_.UnsynchronizedView());
      if (!built.ok()) return built.status();
      workers = std::make_shared<RevisionWorkerSet>(std::move(*built));
      // Contexts are counted when constructed — once per state lifetime,
      // not per call (the doc contract on parallel_workers).
      stats_.parallel_workers += workers->pool->size();
      state.exec_cache_ = workers;
    }

    const int kMaxStalledEpochs = 8;
    int stalled = 0;
    auto run_epochs = [&]() -> Status {
      while (state.buffered() < n) {
        // Pure-ramp epoch size — batch * 4^e, capped at batch * 16 —
        // NEVER clamped by this call's shortfall: a shortfall clamp
        // would cut different batch layouts for different chunkings and
        // break split==whole. Overshoot parks in the state's buffer for
        // the next call, so the cap also bounds how far past its demand
        // a session can generate (and how large the one serial
        // reconcile pass gets); the ramp exists only to make the
        // unlearned transient a constant NUMBER of draws, which the
        // first two epochs already ensure.
        const size_t need =
            options_.batch_size
            << std::min<uint64_t>(2 * state.epoch_index_, ramp_cap);
        ++state.epoch_index_;
        const size_t num_batches =
            (need + options_.batch_size - 1) / options_.batch_size;
        std::vector<ClaimBatch> claim_slots(num_batches);
        for (auto* context : workers->contexts) {
          context->BindEpochSlots(&claim_slots);
        }

        const std::vector<bool> epoch_start_disabled = disabled_;
        auto drawn = executor.Execute(need, state.epoch_seeds_.Next(),
                                      *workers->pool, &stats_);
        if (!drawn.ok()) return drawn.status();
        // Same invariant as the per-call paths, at the resumable path's
        // tighter boundary: the fan-out itself never touches the
        // persistent exclusion set — the epoch-boundary fold below is
        // its only writer and runs serially between fan-outs.
        SUJ_CHECK(disabled_ == epoch_start_disabled);

        // Flatten the per-batch claim journals in batch order; the
        // executor returned the tuples in the same order, one claim per
        // tuple.
        std::vector<OwnershipClaim> claims;
        claims.reserve(drawn->size());
        for (auto& slot : claim_slots) {
          for (auto& claim : slot) claims.push_back(std::move(claim));
        }
        SUJ_CHECK(claims.size() == drawn->size());

        // Reconcile into a per-epoch result: the purge horizon of a
        // revision is the epoch's own claims, and the epoch's survivors
        // finalize into the state's buffer — the prefix-stability that
        // makes chunked delivery byte-identical to one-shot
        // (core/revision_state.h).
        auto reconcile_start = Clock::now();
        std::vector<Tuple> epoch_result;
        std::vector<std::string> epoch_keys;
        ReconcileOutcome outcome = state.ownership_.Reconcile(
            std::move(claims), std::move(*drawn), &epoch_result,
            &epoch_keys);
        stats_.reconciliation_seconds += SecondsSince(reconcile_start);
        ++stats_.revision_epochs;
        stats_.revisions += outcome.revisions;
        stats_.removed_by_revision += outcome.purged;
        stats_.reconcile_dropped += outcome.dropped;

        // Epoch-boundary abandonment fold: a cover exposed as dead
        // during this epoch stops being selected from the NEXT epoch on
        // — the same fold at every chunking — and lands in the
        // sampler's persistent exclusion set at the same point.
        bool newly_abandoned = false;
        for (const auto& mask : workers->abandoned) {
          for (size_t j = 0; j < joins_.size(); ++j) {
            if (!mask[j]) continue;
            if (state.weights_[j] != 0.0) {
              state.weights_[j] = 0.0;
              newly_abandoned = true;
            }
            disabled_[j] = true;
          }
        }
        if (newly_abandoned) {
          double remaining = 0.0;
          for (double w : state.weights_) remaining += w;
          if (remaining <= 0.0) {
            return Status::Internal(
                "every join's cover was abandoned; warm-up estimates are "
                "inconsistent with the data");
          }
        }

        const bool progressed = !epoch_result.empty();
        state.AppendFinalized(std::move(epoch_result));
        if (!progressed) {
          if (++stalled >= kMaxStalledEpochs) {
            return Status::Internal(
                "revision reconciliation made no progress for " +
                std::to_string(stalled) +
                " consecutive epochs; the join samplers and cover "
                "estimates are inconsistent");
          }
        } else {
          stalled = 0;
        }
      }
      return Status::OK();
    };
    const Status run_status = run_epochs();
    // Context stats fold in as a DELTA since the previous call's fold —
    // the pool outlives the call — and error or not, so a failing call
    // never loses its completed epochs' accounting.
    const Status merge_status = workers->pool->MergeStatsDeltaInto(&stats_);
    SUJ_RETURN_NOT_OK(run_status);
    SUJ_RETURN_NOT_OK(merge_status);
  }

  // Deliver only after every epoch the call needed has succeeded: an
  // error above returns with the state's delivery cursor untouched
  // (finalized epochs stay buffered), so a retried call resumes the
  // stream without a gap.
  std::vector<Tuple> out;
  out.reserve(n);
  state.DrainInto(&out, n);
  SUJ_CHECK(out.size() == n);
  // Instrument the surplus the fixed ramp parked for the NEXT call: the
  // level this session's buffer peaked at between calls.
  stats_.revision_surplus_high_water =
      std::max(stats_.revision_surplus_high_water,
               static_cast<uint64_t>(state.buffered()));
  return out;
}

Result<std::vector<Tuple>> UnionSampler::Sample(size_t n, Rng& rng,
                                                RevisionState& state) {
  if (options_.mode != Mode::kRevision ||
      options_.sampler_factory == nullptr) {
    return Status::InvalidArgument(
        "resumable sampling requires Mode::kRevision on the batched "
        "executor path (set Options::sampler_factory)");
  }
  if (state.initialized() && state.bound_to_ != this) {
    return Status::InvalidArgument(
        "RevisionState is bound to a different UnionSampler; a resumed "
        "protocol cannot migrate between samplers");
  }
  ScopedCoreStatsExport obs_export(&stats_);
  return SampleRevisionResumable(n, rng, state);
}

Result<std::vector<Tuple>> UnionSampler::Sample(size_t n, Rng& rng) {
  ScopedCoreStatsExport obs_export(&stats_);
  if (options_.sampler_factory != nullptr) {
    // One draw fixes the substream seed; the caller's RNG advances the
    // same way for every thread count.
    uint64_t seed = rng.Next();
    return options_.mode == Mode::kMembershipOracle
               ? SampleParallel(n, seed)
               : SampleRevisionParallel(n, seed);
  }
  std::vector<Tuple> result;
  std::vector<std::string> result_keys;  // parallel encodings, for revision
  result.reserve(n);
  // Revision state: value -> owning join (the paper's orig_join record).
  // Per-call: a revision purges stale copies from THIS call's result set,
  // so ownership learned here cannot be carried into later calls whose
  // delivered tuples are beyond reach. Abandonment (disabled_) does carry
  // over — see the header's resumability note.
  std::unordered_map<std::string, int> owner;

  std::vector<double> weights = estimates_.cover_sizes;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (disabled_[i]) weights[i] = 0.0;
  }
  // O(1) alias-backed join selection; rebuilt only on abandonment (at
  // most once per join per call). Build fails exactly when every cover
  // was already abandoned.
  auto selector = WeightedSelector::Build(std::move(weights));
  if (!selector.ok()) {
    return Status::Internal(
        "every join's cover was abandoned; warm-up estimates are "
        "inconsistent with the data");
  }

  while (result.size() < n) {
    ++stats_.rounds;
    int j = static_cast<int>(selector->Sample(rng));

    bool round_done = false;
    for (uint64_t draw = 0; draw < options_.max_draws_per_round && !round_done;
         ++draw) {
      auto start = Clock::now();
      ++stats_.join_draws;
      std::optional<Tuple> t = samplers_[j]->TrySample(rng);
      if (!t.has_value()) {
        stats_.rejected_seconds += SecondsSince(start);
        continue;  // join-level rejection; retry the same join
      }

      if (options_.mode == Mode::kMembershipOracle) {
        int first = oracle_.Owner(*t);
        if (first != j) {
          // The cover assigns this value to an earlier join: t is outside
          // J'_j. Retry the same join (uniformity on J'_j).
          ++stats_.rejected_cover;
          stats_.rejected_seconds += SecondsSince(start);
          continue;
        }
        result.push_back(std::move(*t));
        ++stats_.accepted;
        stats_.accepted_seconds += SecondsSince(start);
        round_done = true;
      } else {
        // Revision protocol (Algorithm 1, lines 8-14).
        std::string key = t->Encode();
        auto it = owner.find(key);
        if (it != owner.end() && it->second < j) {
          // Value already assigned to an earlier join: reject, retry.
          ++stats_.rejected_cover;
          stats_.rejected_seconds += SecondsSince(start);
          continue;
        }
        if (it != owner.end() && it->second > j) {
          // Revision: this join precedes the recorded owner in the cover
          // order, so the value migrates to J_j and stale copies are
          // purged from the result.
          ++stats_.revisions;
          size_t before = result.size();
          for (size_t k = result.size(); k-- > 0;) {
            if (result_keys[k] == key) {
              result.erase(result.begin() + k);
              result_keys.erase(result_keys.begin() + k);
            }
          }
          stats_.removed_by_revision += before - result.size();
          it->second = j;
        } else if (it == owner.end()) {
          owner.emplace(key, j);
        }
        result_keys.push_back(key);
        result.push_back(std::move(*t));
        ++stats_.accepted;
        stats_.accepted_seconds += SecondsSince(start);
        round_done = true;
      }
    }
    if (!round_done) {
      // The join produced no owned tuple within the budget: its estimated
      // cover overstated an (effectively) empty real cover. Stop selecting
      // it — in this call and every later one on this instance.
      ++stats_.abandoned_rounds;
      disabled_[j] = true;
      if (!selector->Zero(static_cast<size_t>(j)).ok()) {
        return Status::Internal(
            "every join's cover was abandoned; warm-up estimates are "
            "inconsistent with the data");
      }
    }
  }
  return result;
}

JoinSampleStats UnionSampler::AggregatedJoinStats() const {
  JoinSampleStats agg;
  for (const auto& s : samplers_) {
    agg.attempts += s->stats().attempts;
    agg.successes += s->stats().successes;
    agg.dead_ends += s->stats().dead_ends;
    agg.rejections += s->stats().rejections;
  }
  return agg;
}

Result<std::unique_ptr<DisjointUnionSampler>> DisjointUnionSampler::Create(
    std::vector<JoinSpecPtr> joins,
    std::vector<std::unique_ptr<JoinSampler>> samplers,
    std::vector<double> join_sizes) {
  SUJ_RETURN_NOT_OK(ValidateSamplerSet(joins, samplers));
  if (join_sizes.size() != joins.size()) {
    return Status::InvalidArgument("join_sizes must match join count");
  }
  double total = 0.0;
  for (double s : join_sizes) total += s;
  if (total <= 0.0) {
    return Status::FailedPrecondition("disjoint union is (estimated) empty");
  }
  auto alias = AliasTable::Build(join_sizes);
  if (!alias.ok()) return alias.status();
  return std::unique_ptr<DisjointUnionSampler>(new DisjointUnionSampler(
      std::move(joins), std::move(samplers), std::move(join_sizes),
      std::move(*alias)));
}

Result<std::vector<Tuple>> DisjointUnionSampler::Sample(size_t n, Rng& rng) {
  std::vector<Tuple> result;
  result.reserve(n);
  while (result.size() < n) {
    int j = static_cast<int>(alias_.Sample(rng));
    auto t = samplers_[j]->Sample(rng);
    if (!t.ok()) return t.status();
    result.push_back(std::move(t).value());
  }
  return result;
}

Result<std::unique_ptr<BernoulliUnionSampler>> BernoulliUnionSampler::Create(
    std::vector<JoinSpecPtr> joins,
    std::vector<std::unique_ptr<JoinSampler>> samplers,
    UnionEstimates estimates, std::vector<JoinMembershipProberPtr> probers) {
  SUJ_RETURN_NOT_OK(ValidateSamplerSet(joins, samplers));
  if (probers.size() != joins.size()) {
    return Status::InvalidArgument("need one membership prober per join");
  }
  if (estimates.union_size_eq1 <= 0.0) {
    return Status::FailedPrecondition("union is (estimated) empty");
  }
  return std::unique_ptr<BernoulliUnionSampler>(
      new BernoulliUnionSampler(std::move(joins), std::move(samplers),
                                std::move(estimates), std::move(probers)));
}

Result<std::vector<Tuple>> BernoulliUnionSampler::Sample(size_t n, Rng& rng) {
  std::vector<Tuple> result;
  result.reserve(n);
  const double u = std::max(estimates_.union_size_eq1, 1e-12);
  while (result.size() < n) {
    ++stats_.rounds;
    // Every join fires independently with probability |J_j| / |U|.
    for (size_t j = 0; j < joins_.size() && result.size() < n; ++j) {
      double p = std::min(1.0, estimates_.join_sizes[j] / u);
      if (!rng.Bernoulli(p)) continue;
      if (samplers_[j]->IsEmpty()) continue;
      auto start = std::chrono::steady_clock::now();
      ++stats_.join_draws;
      auto t = samplers_[j]->Sample(rng);
      if (!t.ok()) return t.status();
      // Keep only if J_j is the first join containing the value.
      if (oracle_.Owner(*t) == static_cast<int>(j)) {
        result.push_back(std::move(t).value());
        ++stats_.accepted;
        stats_.accepted_seconds += SecondsSince(start);
      } else {
        ++stats_.rejected_cover;
        stats_.rejected_seconds += SecondsSince(start);
      }
    }
  }
  return result;
}

Result<std::vector<Tuple>> NaiveUnionOfSamples(
    const std::vector<JoinSpecPtr>& joins,
    std::vector<std::unique_ptr<JoinSampler>>& samplers,
    size_t samples_per_join, Rng& rng) {
  SUJ_RETURN_NOT_OK(ValidateUnionCompatible(joins));
  if (samplers.size() != joins.size()) {
    return Status::InvalidArgument("need one sampler per join");
  }
  std::vector<Tuple> result;
  std::unordered_set<std::string> seen;
  for (size_t j = 0; j < joins.size(); ++j) {
    if (samplers[j]->IsEmpty()) continue;
    for (size_t k = 0; k < samples_per_join; ++k) {
      auto t = samplers[j]->Sample(rng);
      if (!t.ok()) return t.status();
      // Set union: keep one instance of overlapping tuples.
      if (seen.insert(t->Encode()).second) {
        result.push_back(std::move(t).value());
      }
    }
  }
  return result;
}

}  // namespace suj
