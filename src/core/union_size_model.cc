#include "core/union_size_model.h"

#include <algorithm>
#include <unordered_map>

namespace suj {

std::vector<double> UnionEstimates::JoinToUnionRatios() const {
  std::vector<double> ratios;
  ratios.reserve(join_sizes.size());
  for (double s : join_sizes) {
    ratios.push_back(union_size_eq1 > 0.0 ? s / union_size_eq1 : 0.0);
  }
  return ratios;
}

Result<UnionEstimates> ComputeUnionEstimates(OverlapEstimator* estimator) {
  if (estimator == nullptr) {
    return Status::InvalidArgument("null estimator");
  }
  const int n = estimator->num_joins();
  if (n < 1 || n > 20) {
    return Status::InvalidArgument(
        "union warm-up supports 1..20 joins (2^n subset overlaps)");
  }

  // Memoize subset overlaps: the cover and the k-overlap recurrence both
  // sweep the powerset lattice.
  std::unordered_map<SubsetMask, double> cache;
  auto overlap = [&](SubsetMask mask) -> Result<double> {
    auto it = cache.find(mask);
    if (it != cache.end()) return it->second;
    auto est = estimator->EstimateOverlap(mask);
    if (!est.ok()) return est.status();
    double v = std::max(0.0, est.value());
    cache.emplace(mask, v);
    return v;
  };

  UnionEstimates out;
  out.join_sizes.resize(n);
  for (int j = 0; j < n; ++j) {
    auto s = overlap(1ULL << j);
    if (!s.ok()) return s.status();
    out.join_sizes[j] = s.value();
  }

  // Cover sizes by inclusion-exclusion over earlier joins. Estimated
  // overlaps are additionally capped at min over the subset's join sizes
  // (a valid bound any estimator must respect) to tame loose bounds.
  auto capped_overlap = [&](SubsetMask mask) -> Result<double> {
    auto v = overlap(mask);
    if (!v.ok()) return v;
    double cap = v.value();
    for (int j : MaskToIndices(mask)) {
      cap = std::min(cap, out.join_sizes[j]);
    }
    return cap;
  };

  out.cover_sizes.resize(n);
  for (int i = 0; i < n; ++i) {
    double size = 0.0;
    SubsetMask earlier = FullMask(i);  // bits 0..i-1
    // All subsets of the earlier joins, including the empty set.
    size += out.join_sizes[i];  // Delta = {}
    if (earlier != 0) {
      for (SubsetMask sub : NonEmptySubsetsOf(earlier)) {
        auto o = capped_overlap(sub | (1ULL << i));
        if (!o.ok()) return o.status();
        size += (PopCount(sub) % 2 == 1 ? -1.0 : 1.0) * o.value();
      }
    }
    out.cover_sizes[i] = std::max(0.0, size);
    out.union_size_cover += out.cover_sizes[i];
  }

  auto table = SolveKOverlaps(
      n, [&](SubsetMask mask) { return capped_overlap(mask); });
  if (!table.ok()) return table.status();
  out.k_overlaps = std::move(table).value();
  out.union_size_eq1 = out.k_overlaps.UnionSize();
  return out;
}

}  // namespace suj
