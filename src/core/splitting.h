// The splitting method (§5.2, §8.1): decompose a join against a standard
// template of two-attribute sub-relations.
//
// Given a template A_1..A_d, every join is rewritten as the chain of links
// L_i = (A_i, A_{i+1}), i = 1..d-1. A link is REAL when some base relation
// of the join contains both attributes (the link's statistics come from
// that relation); otherwise it is VIRTUAL and the pair must be connected
// through a join path between a holder of A_i and a holder of A_{i+1}
// (§8.1's "fake join the children and estimate the sub-join size"): the
// estimator inflates the link's degree statistics by the product of max
// degrees along that path.
//
// Consecutive links drawn from the SAME base relation are connected by a
// fake join (row identity, max degree 1); links from different relations
// are connected by a real join on the shared template attribute. Splitting
// never materializes sub-relations: only their degree statistics are
// needed, and those are exactly the original relations' column histograms
// ("split relations keep a record of their original sizes").

#ifndef SUJ_CORE_SPLITTING_H_
#define SUJ_CORE_SPLITTING_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "join/join_spec.h"

namespace suj {

/// One template link (A_i, A_{i+1}) of a split join.
struct EstimationLink {
  std::string attr_left;
  std::string attr_right;
  /// Relation index supplying this link's statistics; -1 for virtual links.
  int source_relation = -1;
  /// For virtual links: relation-index path from a holder of attr_left to a
  /// holder of attr_right (inclusive); empty for real links.
  std::vector<int> path;
  /// True iff this link and the next come from the same base relation
  /// (fake join, max degree 1 in Theorem 4).
  bool fake_join_to_next = false;

  bool is_virtual() const { return source_relation < 0; }
};

/// A join decomposed against a template.
struct EstimationChain {
  JoinSpecPtr join;
  std::vector<std::string> template_attrs;
  std::vector<EstimationLink> links;  // template size - 1
};

/// Splits `join` against `template_attrs` (which must cover exactly the
/// join's output attributes, in any order).
Result<EstimationChain> SplitJoinToChain(
    const JoinSpecPtr& join, const std::vector<std::string>& template_attrs);

}  // namespace suj

#endif  // SUJ_CORE_SPLITTING_H_
