// Standard-template selection for the splitting method (§8.1).
//
// The histogram estimator compares joins link-by-link, which requires every
// join to be decomposed against the SAME chain of two-attribute
// sub-relations: the template. A template is an ordering A_1..A_d of the
// (shared) output attributes; sub-relation i is (A_i, A_{i+1}).
//
// A good template keeps attribute pairs that live in the same base relation
// adjacent (Example 7): the quality of the bound degrades with every pair
// that must be synthesized across a join path. Following §8.1.1, each pair
// is scored score(A,A') = sum_j Dist_j(A,A') -- the join-graph distance
// between the relations holding A and A' in join j -- and the template is
// the attribute ordering minimizing the total consecutive-pair score
// (a minimum-cost Hamiltonian path; exact Held-Karp DP for <= 16
// attributes, greedy nearest-neighbor beyond). §8.1.2's "alternating score"
// hyper-parameter reweights Dist = 0 pairs.

#ifndef SUJ_CORE_TEMPLATE_SELECTOR_H_
#define SUJ_CORE_TEMPLATE_SELECTOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "join/join_spec.h"

namespace suj {

/// \brief Selects the standard template for a union of joins.
class TemplateSelector {
 public:
  struct Options {
    /// Score assigned to co-located pairs (Dist_j = 0); §8.1.2's tunable.
    double zero_dist_weight = 0.0;
    /// Largest attribute count solved exactly (Held-Karp is O(2^d d^2)).
    int exact_limit = 16;
  };

  /// Join-graph distance between the relations of `join` holding `a` and
  /// those holding `b` (0 when co-located; min over holder pairs).
  /// Fails if either attribute is absent from the join.
  static Result<int> Distance(const JoinSpecPtr& join, const std::string& a,
                              const std::string& b);

  /// score(a, b) = sum over joins of (Dist == 0 ? zero_dist_weight : Dist).
  static Result<double> PairScore(const std::vector<JoinSpecPtr>& joins,
                                  const std::string& a, const std::string& b,
                                  const Options& options);

  /// The minimum-cost attribute ordering over the shared output schema.
  static Result<std::vector<std::string>> SelectTemplate(
      const std::vector<JoinSpecPtr>& joins, const Options& options);
  static Result<std::vector<std::string>> SelectTemplate(
      const std::vector<JoinSpecPtr>& joins) {
    return SelectTemplate(joins, Options());
  }

  /// Total consecutive-pair score of a given ordering (for ablations and
  /// tests: compare a chosen template against a bad one, as in Example 7).
  static Result<double> TemplateCost(const std::vector<JoinSpecPtr>& joins,
                                     const std::vector<std::string>& order,
                                     const Options& options);
  static Result<double> TemplateCost(const std::vector<JoinSpecPtr>& joins,
                                     const std::vector<std::string>& order) {
    return TemplateCost(joins, order, Options());
  }
};

}  // namespace suj

#endif  // SUJ_CORE_TEMPLATE_SELECTOR_H_
