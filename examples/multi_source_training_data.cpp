// The paper's motivating scenario (Example 1): a data scientist needs an
// i.i.d. training sample of customer/order data that lives in several
// per-region databases, each reachable only through a multi-way join.
//
// This example builds the UQ1 workload (one chain join per region variant,
// with a controlled fraction of shared rows), runs the random-walk warm-up,
// and draws a training sample from the union of the five joins -- without
// executing any full join or union. It then cross-checks the estimated
// parameters against ground truth computed by the FullJoinUnion baseline
// (feasible here because the example runs at toy scale).

#include <cstdio>

#include "core/exact_overlap.h"
#include "core/random_walk_overlap.h"
#include "core/union_sampler.h"
#include "join/exact_weight.h"
#include "join/membership.h"
#include "workloads/tpch_workloads.h"

using namespace suj;  // NOLINT: example brevity

int main() {
  tpch::OverlapConfig config;
  config.per_variant.scale_factor = 0.5;
  config.num_variants = 5;
  config.overlap_scale = 0.3;  // 30% of each table shared across regions
  auto workload = workloads::BuildUQ1(config).value();

  std::printf("union of %zu joins:\n", workload.joins.size());
  for (const auto& join : workload.joins) {
    std::printf("  %s\n", join->ToString().c_str());
  }

  // Warm-up: wander-join random walks estimate |J_j| and the overlaps
  // (centralized setting; §6), terminating at 90%% confidence or 1000
  // walks per join, as in the paper's evaluation.
  CompositeIndexCache cache;
  auto walker =
      RandomWalkOverlapEstimator::Create(workload.joins, &cache).value();
  Rng rng(2024);
  Status warmup = walker->Warmup(rng);
  if (!warmup.ok()) {
    std::fprintf(stderr, "warm-up failed: %s\n", warmup.ToString().c_str());
    return 1;
  }
  UnionEstimates estimates = ComputeUnionEstimates(walker.get()).value();

  // Ground truth for comparison (only possible at toy scale!).
  auto exact = ExactOverlapCalculator::Create(workload.joins).value();
  std::printf("\nestimated |U| = %.0f   (exact: %llu)\n",
              estimates.union_size_eq1,
              static_cast<unsigned long long>(exact->UnionSize()));
  for (size_t j = 0; j < workload.joins.size(); ++j) {
    std::printf("  est |J_%zu| = %7.0f  (exact %6zu)   est |J'_%zu| = %7.0f\n",
                j, estimates.join_sizes[j], exact->JoinSize(j), j,
                estimates.cover_sizes[j]);
  }

  // Draw the training sample: Algorithm 1 with exact-weight join samplers.
  std::vector<std::unique_ptr<JoinSampler>> samplers;
  for (const auto& join : workload.joins) {
    samplers.push_back(ExactWeightSampler::Create(join, &cache).value());
  }
  auto probers = BuildProbers(workload.joins).value();
  UnionSampler::Options options;
  options.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = UnionSampler::Create(workload.joins, std::move(samplers),
                                      estimates, probers, options)
                     .value();
  const size_t n = 5000;
  std::vector<Tuple> training = sampler->Sample(n, rng).value();

  std::printf("\ndrew %zu i.i.d. training tuples; first three:\n",
              training.size());
  const Schema& schema = workload.joins[0]->output_schema();
  for (int i = 0; i < 3; ++i) {
    std::printf("  %s\n", training[i].ToString().c_str());
  }
  std::printf("(%zu attributes: ", schema.num_fields());
  for (size_t f = 0; f < schema.num_fields(); ++f) {
    std::printf("%s%s", f ? ", " : "", schema.field(f).name.c_str());
  }
  std::printf(")\n");

  const auto& stats = sampler->stats();
  std::printf("\nsampling cost: %llu join draws for %llu accepted "
              "(cover rejection ratio %.3f)\n",
              static_cast<unsigned long long>(stats.join_draws),
              static_cast<unsigned long long>(stats.accepted),
              stats.CoverRejectionRatio());
  return 0;
}
