// Service demo: N client threads sharing one SamplingService.
//
// Prepares a union-of-joins query once, opens one session per client, and
// lets the clients sample concurrently — each on its own RNG substream,
// all against the same pinned plan, throttled by the admission
// controller. Afterwards it prints per-session stats and VERIFIES the
// serving contract on real threads (which makes this binary the
// `suj_service_smoke` CTest, including under TSan):
//   1. every session's sequence is identical to a sequential re-run on an
//      identically seeded service (interleaving independence), and
//   2. all sessions' sequences are pairwise distinct (disjoint
//      substreams).
// Exits non-zero if either check fails.
//
// Usage: service_demo [--clients N] [--requests R] [--batch B]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "service/sampling_service.h"
#include "workloads/synthetic.h"

using namespace suj;  // NOLINT: example brevity

namespace {

struct Config {
  size_t clients = 4;
  size_t requests = 3;   // Sample calls per client
  size_t batch = 200;    // tuples per call
};

// One full run: fresh service, `clients` sessions, every session issues
// `requests` Sample(batch) calls. Returns per-session concatenated
// encodings. `concurrent` toggles client threads vs a sequential loop —
// the outputs must not differ.
std::vector<std::vector<std::string>> Run(const Config& config,
                                          bool concurrent) {
  ServiceOptions options;
  options.seed = 4242;
  options.max_inflight = 2;  // smaller than `clients`: admission throttles
  options.max_sessions = config.clients;
  auto service = SamplingService::Create(options).value();

  workloads::SyntheticChainOptions chains;
  chains.num_joins = 3;
  chains.master_rows = 40;
  chains.seed = 7;
  auto joins = workloads::MakeOverlappingChains(chains).value();
  auto plan = service->Prepare("demo_union", joins).value();
  if (concurrent) {
    std::printf("prepared '%s' (plan %llu) in %.1f ms: %zu joins, "
                "|U| ~= %.0f, template size %zu\n",
                plan->name().c_str(),
                static_cast<unsigned long long>(plan->plan_id()),
                plan->build_seconds() * 1e3, plan->joins().size(),
                plan->estimates().union_size_cover,
                plan->standard_template().size());
  }

  std::vector<uint64_t> sessions;
  for (size_t c = 0; c < config.clients; ++c) {
    sessions.push_back(service->OpenSession("demo_union").value());
  }

  std::vector<std::vector<std::string>> sequences(config.clients);
  auto client = [&](size_t c) {
    for (size_t r = 0; r < config.requests; ++r) {
      auto batch = service->Sample(sessions[c], config.batch);
      if (!batch.ok()) {
        std::fprintf(stderr, "client %zu: %s\n", c,
                     batch.status().ToString().c_str());
        std::exit(1);
      }
      for (const auto& t : *batch) sequences[c].push_back(t.Encode());
    }
  };
  if (concurrent) {
    std::vector<std::thread> threads;
    for (size_t c = 0; c < config.clients; ++c) threads.emplace_back(client, c);
    for (auto& t : threads) t.join();
  } else {
    for (size_t c = 0; c < config.clients; ++c) client(c);
  }

  if (concurrent) {
    std::printf("\n%-8s %-8s %-10s %-10s %-12s %s\n", "session", "plan",
                "requests", "tuples", "join_draws", "cover_rej_ratio");
    for (size_t c = 0; c < config.clients; ++c) {
      auto stats = service->SessionStats(sessions[c]).value();
      std::printf("%-8llu %-8llu %-10llu %-10llu %-12llu %.3f\n",
                  static_cast<unsigned long long>(stats.session_id),
                  static_cast<unsigned long long>(stats.plan_id),
                  static_cast<unsigned long long>(stats.requests),
                  static_cast<unsigned long long>(stats.tuples_delivered),
                  static_cast<unsigned long long>(stats.sampler.join_draws),
                  stats.sampler.CoverRejectionRatio());
    }
    auto admission = service->admission().snapshot();
    std::printf("admission: %llu admitted, %llu waited, peak %zu in flight "
                "(cap %zu)\n",
                static_cast<unsigned long long>(admission.admitted),
                static_cast<unsigned long long>(admission.waited),
                admission.peak_in_flight,
                service->admission().max_inflight());
  }
  return sequences;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    auto want_value = [&](const char* flag) -> long {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s wants a positive integer\n", flag);
        std::exit(2);
      }
      long v = std::atol(argv[++i]);
      if (v < 1) {
        std::fprintf(stderr, "%s wants a positive integer\n", flag);
        std::exit(2);
      }
      return v;
    };
    if (std::strcmp(argv[i], "--clients") == 0) {
      config.clients = static_cast<size_t>(want_value("--clients"));
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      config.requests = static_cast<size_t>(want_value("--requests"));
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      config.batch = static_cast<size_t>(want_value("--batch"));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--clients N] [--requests R] [--batch B]\n",
                   argv[0]);
      return 2;
    }
  }

  auto concurrent = Run(config, /*concurrent=*/true);
  auto sequential = Run(config, /*concurrent=*/false);

  // Check 1: interleaving independence.
  for (size_t c = 0; c < config.clients; ++c) {
    if (concurrent[c] != sequential[c]) {
      std::fprintf(stderr,
                   "FAIL: session %zu produced a different sequence under "
                   "concurrency\n",
                   c);
      return 1;
    }
  }
  // Check 2: disjoint substreams — sessions never replay each other.
  for (size_t a = 0; a < config.clients; ++a) {
    for (size_t b = a + 1; b < config.clients; ++b) {
      if (concurrent[a] == concurrent[b]) {
        std::fprintf(stderr,
                     "FAIL: sessions %zu and %zu drew identical sequences\n",
                     a, b);
        return 1;
      }
    }
  }
  std::printf("\nOK: %zu concurrent sessions == sequential re-run, all "
              "substreams disjoint\n",
              config.clients);
  return 0;
}
