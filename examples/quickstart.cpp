// Quickstart: uniform i.i.d. sampling over the set union of two joins.
//
// Builds two tiny overlapping chain joins by hand, runs the warm-up to get
// join/overlap/union estimates, and draws uniform samples from the union
// without ever materializing it. Prints the estimates and the empirical
// sample distribution so uniformity is visible.
//
// With `--threads N` the draw runs on the batched parallel executor (N
// worker threads, per-batch RNG substreams); the sample sequence is
// identical to any other thread count by construction.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "core/exact_overlap.h"
#include "core/union_sampler.h"
#include "join/exact_weight.h"
#include "join/membership.h"
#include "workloads/synthetic.h"

using namespace suj;  // NOLINT: example brevity

int main(int argc, char** argv) {
  size_t threads = 0;  // 0 = sequential classic loop
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      long parsed = std::atol(argv[++i]);
      if (parsed < 1) {
        std::fprintf(stderr, "--threads wants a positive integer\n");
        return 2;
      }
      threads = static_cast<size_t>(parsed);
    } else {
      std::fprintf(stderr, "usage: %s [--threads N]\n", argv[0]);
      return 2;
    }
  }
  // Two joins over attributes (A0, A1, A2): J0 = R0 |><| S0, J1 = R1 |><| S1.
  // Their relations share some rows, so the join results overlap.
  auto r0 = workloads::MakeRelation(
                "R0", {"A0", "A1"}, {{1, 10}, {2, 10}, {3, 20}, {4, 30}})
                .value();
  auto s0 = workloads::MakeRelation(
                "S0", {"A1", "A2"}, {{10, 100}, {20, 200}, {30, 300}})
                .value();
  auto r1 = workloads::MakeRelation(
                "R1", {"A0", "A1"}, {{1, 10}, {3, 20}, {5, 20}, {6, 40}})
                .value();
  auto s1 = workloads::MakeRelation(
                "S1", {"A1", "A2"}, {{10, 100}, {20, 200}, {40, 400}})
                .value();

  JoinSpecPtr j0 = JoinSpec::Create("J0", {r0, s0}).value();
  JoinSpecPtr j1 = JoinSpec::Create("J1", {r1, s1}).value();
  std::vector<JoinSpecPtr> joins = {j0, j1};

  // Warm-up: here with exact overlaps (tiny data); see data_market.cpp and
  // online_reuse.cpp for the histogram / random-walk instantiations.
  auto overlap = ExactOverlapCalculator::Create(joins).value();
  UnionEstimates estimates = ComputeUnionEstimates(overlap.get()).value();
  std::printf("|J0| = %.0f, |J1| = %.0f, |J0 n J1| = %.0f, |U| = %.0f\n",
              estimates.join_sizes[0], estimates.join_sizes[1],
              overlap->EstimateOverlap(0b11).value(),
              estimates.union_size_eq1);
  std::printf("cover sizes: |J'_0| = %.0f, |J'_1| = %.0f\n",
              estimates.cover_sizes[0], estimates.cover_sizes[1]);

  // Per-join uniform samplers (exact weight: no join-level rejection). The
  // weight indexes are built once; the factory shape lets the parallel
  // executor hand each worker a cheap private sampler set over them.
  CompositeIndexCache cache;
  ExactWeightIndexPtr w0 = ExactWeightIndex::Build(j0, &cache).value();
  ExactWeightIndexPtr w1 = ExactWeightIndex::Build(j1, &cache).value();
  auto make_samplers =
      [&]() -> Result<std::vector<std::unique_ptr<JoinSampler>>> {
    std::vector<std::unique_ptr<JoinSampler>> samplers;
    samplers.push_back(ExactWeightSampler::Create(w0).value());
    samplers.push_back(ExactWeightSampler::Create(w1).value());
    return samplers;
  };

  // Algorithm 1 in centralized (membership-oracle) mode.
  auto probers = BuildProbers(joins).value();
  UnionSampler::Options options;
  options.mode = UnionSampler::Mode::kMembershipOracle;
  if (threads > 0) {
    options.num_threads = threads;
    options.batch_size = 256;
    options.sampler_factory = make_samplers;
    std::printf("sampling on the parallel executor: %zu thread(s)\n",
                threads);
  }
  // The executor path builds per-worker sampler sets from the factory, so
  // no Create-time set is needed there.
  auto sampler =
      UnionSampler::Create(joins,
                           threads > 0
                               ? std::vector<std::unique_ptr<JoinSampler>>{}
                               : make_samplers().value(),
                           estimates, probers, options)
          .value();

  Rng rng(7);
  const size_t n = 6000;
  std::vector<Tuple> samples = sampler->Sample(n, rng).value();

  std::map<std::string, size_t> counts;
  std::map<std::string, std::string> pretty;
  for (const auto& t : samples) {
    ++counts[t.Encode()];
    pretty[t.Encode()] = t.ToString();
  }
  std::printf("\n%zu samples over %zu distinct union tuples "
              "(expected %.0f each):\n",
              n, counts.size(), static_cast<double>(n) / counts.size());
  for (const auto& [key, c] : counts) {
    std::printf("  %-18s x %zu\n", pretty[key].c_str(), c);
  }
  return 0;
}
