// Decentralized setting (§5): sampling a union of joins when only column
// STATISTICS -- not the data -- are available for parameter estimation.
//
// Scenario: three data vendors each expose a join view over their private
// databases plus per-column histograms (value->degree). The buyer wants a
// uniform sample of the union. The histogram-based estimator bounds every
// join size and overlap purely from the shared metadata; sampling then uses
// extended-Olken accept/reject (no precomputed weights, index access only
// at sampling time).

#include <cstdio>

#include "core/histogram_overlap.h"
#include "core/union_sampler.h"
#include "join/membership.h"
#include "join/olken_sampler.h"
#include "workloads/tpch_workloads.h"

using namespace suj;  // NOLINT: example brevity

int main() {
  // Three vendor views: the UQ3 workload (different schemas and shapes --
  // one acyclic join, two chains of different length), which forces the
  // splitting method (§5.2) and template selection (§8.1).
  tpch::TpchConfig config;
  config.scale_factor = 0.5;
  auto workload = workloads::BuildUQ3(config).value();
  for (const auto& join : workload.joins) {
    std::printf("vendor view: %s\n", join->ToString().c_str());
  }

  // The "metadata exchange": column histograms only.
  HistogramCatalog histograms;
  auto estimator =
      HistogramOverlapEstimator::Create(workload.joins, &histograms)
          .value();
  std::printf("\nstandard template (%zu attributes):",
              estimator->template_attrs().size());
  for (const auto& attr : estimator->template_attrs()) {
    std::printf(" %s", attr.c_str());
  }
  std::printf("\n");

  UnionEstimates estimates = ComputeUnionEstimates(estimator.get()).value();
  std::printf("bounded |U| = %.0f; join-size bounds:",
              estimates.union_size_eq1);
  for (double s : estimates.join_sizes) std::printf(" %.0f", s);
  std::printf("\n");

  // Sampling: extended Olken per join (upper-bound weights, accept/reject)
  // and Algorithm 1's revision protocol -- the decentralized mode that
  // needs no membership oracle over the other vendors' joins.
  CompositeIndexCache cache;
  std::vector<std::unique_ptr<JoinSampler>> samplers;
  for (const auto& join : workload.joins) {
    samplers.push_back(OlkenJoinSampler::Create(join, &cache).value());
  }
  UnionSampler::Options options;
  options.mode = UnionSampler::Mode::kRevision;
  auto sampler = UnionSampler::Create(workload.joins, std::move(samplers),
                                      estimates, {}, options)
                     .value();

  Rng rng(99);
  const size_t n = 2000;
  auto samples = sampler->Sample(n, rng);
  if (!samples.ok()) {
    std::fprintf(stderr, "sampling failed: %s\n",
                 samples.status().ToString().c_str());
    return 1;
  }
  const auto& stats = sampler->stats();
  std::printf("\ndrew %zu samples.\n", samples->size());
  std::printf("join draws: %llu (loose bounds => rejection-heavy: the §5 "
              "trade-off)\n",
              static_cast<unsigned long long>(stats.join_draws));
  std::printf("cover rejections: %llu, revisions: %llu, purged: %llu\n",
              static_cast<unsigned long long>(stats.rejected_cover),
              static_cast<unsigned long long>(stats.revisions),
              static_cast<unsigned long long>(stats.removed_by_revision));
  std::printf("abandoned joins (cover overstated): %llu\n",
              static_cast<unsigned long long>(stats.abandoned_rounds));
  return 0;
}
