// Online union sampling (§7, Algorithm 2): start cheap, refine on the fly.
//
// The sampler initializes with the (nearly free) histogram-based estimates,
// then samples with wander-join walks whose statistics keep improving the
// join/overlap/union estimates. Every `phi` recorded probabilities it
// backtracks -- re-thinning already accepted tuples toward the refined
// distribution -- until the estimates reach the target confidence. Warm-up
// walk tuples are recycled into the sample (reuse), which is where the
// latency win of Fig 6 comes from.

#include <cstdio>

#include "core/histogram_overlap.h"
#include "core/online_union_sampler.h"
#include "core/random_walk_overlap.h"
#include "workloads/tpch_workloads.h"

using namespace suj;  // NOLINT: example brevity

int main() {
  tpch::OverlapConfig config;
  config.per_variant.scale_factor = 0.5;
  config.num_variants = 3;
  config.overlap_scale = 0.4;
  auto workload = workloads::BuildUQ1(config).value();

  // Cheap initialization: histogram bounds (no data access).
  HistogramCatalog histograms;
  auto hist =
      HistogramOverlapEstimator::Create(workload.joins, &histograms).value();
  UnionEstimates initial = ComputeUnionEstimates(hist.get()).value();
  std::printf("histogram-initialized |U| bound: %.0f\n",
              initial.union_size_eq1);

  // Random-walk machinery. Run a short warm-up so there is a pool to
  // reuse; Algorithm 2 keeps walking during sampling either way.
  CompositeIndexCache cache;
  RandomWalkOverlapEstimator::Options walk_options;
  walk_options.min_walks = 500;
  walk_options.max_walks = 500;
  auto walker = RandomWalkOverlapEstimator::Create(workload.joins, &cache,
                                                   walk_options)
                    .value();
  Rng rng(17);
  Status warmup = walker->Warmup(rng);
  if (!warmup.ok()) {
    std::fprintf(stderr, "warm-up failed: %s\n", warmup.ToString().c_str());
    return 1;
  }

  OnlineUnionSampler::Options options;
  options.enable_reuse = true;
  options.backtrack_interval = 500;  // phi
  options.confidence = 0.90;         // gamma
  options.ci_threshold = 0.05;
  auto sampler = OnlineUnionSampler::Create(workload.joins, walker.get(),
                                            initial, options)
                     .value();

  const size_t n = 4000;
  auto samples = sampler->Sample(n, rng);
  if (!samples.ok()) {
    std::fprintf(stderr, "sampling failed: %s\n",
                 samples.status().ToString().c_str());
    return 1;
  }

  const auto& stats = sampler->stats();
  const UnionEstimates& refined = sampler->current_estimates();
  std::printf("drew %zu samples.\n", samples->size());
  std::printf("refined |U| estimate after backtracking: %.0f\n",
              refined.union_size_eq1);
  std::printf("reuse phase:   %llu draws, %llu accepted (%.6fs)\n",
              static_cast<unsigned long long>(stats.reuse_draws),
              static_cast<unsigned long long>(stats.reuse_accepted),
              stats.reuse_seconds);
  std::printf("regular phase: %llu walks, %llu accepted (%.6fs)\n",
              static_cast<unsigned long long>(stats.fresh_walks),
              static_cast<unsigned long long>(stats.fresh_accepted),
              stats.regular_seconds);
  std::printf("backtracks: %llu (purged %llu tuples, %.6fs)\n",
              static_cast<unsigned long long>(stats.backtracks),
              static_cast<unsigned long long>(stats.removed_by_backtrack),
              stats.backtrack_seconds);
  return 0;
}
