// Remote quickstart: the full network path in one file.
//
//   1. Build a synthetic union of joins and stand up a SamplingService.
//   2. Start a SujServer on an ephemeral loopback port.
//   3. Connect a SujClient, prepare the query, open a session.
//   4. Draw one batch, then stream a larger sample in chunks.
//   5. Cross-check: the wire bytes equal an in-process session's bytes.
//
// Registered with CTest as suj_remote_smoke: any failure exits non-zero.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "service/sampling_service.h"
#include "workloads/synthetic.h"

using namespace suj;

namespace {

Result<std::vector<JoinSpecPtr>> MakeJoins() {
  workloads::SyntheticChainOptions options;
  options.num_joins = 3;
  options.master_rows = 40;
  options.seed = 7;
  return workloads::MakeOverlappingChains(options);
}

Status Run() {
  // --- Server side: service + network front end -------------------------
  ServiceOptions service_options;
  service_options.seed = 2026;
  SUJ_ASSIGN_OR_RETURN(std::unique_ptr<SamplingService> service,
                       SamplingService::Create(service_options));

  net::SpecResolver resolver =
      [](const std::string& name) -> Result<std::vector<JoinSpecPtr>> {
    if (name != "overlapping_chains") {
      return Status::NotFound("unknown query '" + name + "'");
    }
    return MakeJoins();
  };

  net::ServerOptions server_options;  // ephemeral port, default quotas
  net::SujServer server(service.get(), resolver, server_options);
  SUJ_RETURN_NOT_OK(server.Start());
  std::printf("server listening on 127.0.0.1:%u\n", server.port());

  // --- Client side: connect, prepare, sample ----------------------------
  SUJ_ASSIGN_OR_RETURN(
      net::SujClient client,
      net::SujClient::Connect("127.0.0.1", server.port(), "quickstart"));

  SUJ_ASSIGN_OR_RETURN(net::PrepareResponse prepared,
                       client.Prepare("overlapping_chains"));
  std::printf("prepared plan %llu (%.1f ms build, ~%llu KiB)\n",
              static_cast<unsigned long long>(prepared.plan_id),
              prepared.build_seconds * 1e3,
              static_cast<unsigned long long>(
                  prepared.approx_memory_bytes >> 10));

  net::OpenSessionRequest open;
  open.query = "overlapping_chains";
  open.mode = 2;  // revision protocol: deterministic at any thread count
  open.worker_threads = 2;
  SUJ_ASSIGN_OR_RETURN(uint64_t session, client.OpenSession(open));

  SUJ_ASSIGN_OR_RETURN(std::vector<std::string> batch,
                       client.Sample(session, 10));
  std::printf("one batch of %zu tuples; first: ", batch.size());
  SUJ_ASSIGN_OR_RETURN(Tuple first, DecodeTuple(batch[0]));
  for (size_t i = 0; i < first.size(); ++i) {
    std::printf("%s%lld", i ? ", " : "(",
                static_cast<long long>(first.value(i).int64()));
  }
  std::printf(")\n");

  size_t streamed = 0;
  SUJ_RETURN_NOT_OK(client.StreamSample(
      session, /*total=*/200, /*chunk_size=*/50,
      [&](const net::TupleChunk& chunk) {
        streamed += chunk.encoded_tuples.size();
        return Status::OK();
      }));
  std::printf("streamed %zu tuples in chunks of 50\n", streamed);
  if (streamed != 200) return Status::Internal("short stream");

  SUJ_ASSIGN_OR_RETURN(net::SessionStatsResponse stats,
                       client.SessionStats(session));
  std::printf("session %llu: %llu requests, %llu tuples, surplus "
              "high-water %llu\n",
              static_cast<unsigned long long>(stats.session_id),
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.tuples_delivered),
              static_cast<unsigned long long>(
                  stats.revision_surplus_high_water));

  // --- Determinism cross-check ------------------------------------------
  // An in-process service with the same seed, session rank, and request
  // sizes must produce byte-identical samples to what came off the wire.
  SUJ_ASSIGN_OR_RETURN(std::unique_ptr<SamplingService> local,
                       SamplingService::Create(service_options));
  SUJ_ASSIGN_OR_RETURN(std::vector<JoinSpecPtr> joins, MakeJoins());
  SUJ_RETURN_NOT_OK(
      local->Prepare("overlapping_chains", std::move(joins)).status());
  SUJ_ASSIGN_OR_RETURN(SessionOptions session_options,
                       open.ToSessionOptions());
  SUJ_ASSIGN_OR_RETURN(
      uint64_t local_session,
      local->OpenSession("overlapping_chains", session_options));
  SUJ_ASSIGN_OR_RETURN(std::vector<Tuple> local_batch,
                       local->Sample(local_session, 10));
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i] != local_batch[i].Encode()) {
      return Status::Internal("wire bytes diverge from in-process bytes");
    }
  }
  std::printf("determinism check: wire == in-process, byte for byte\n");

  SUJ_RETURN_NOT_OK(client.CloseSession(session));
  server.Stop();
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "remote_quickstart FAILED: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  std::printf("remote_quickstart OK\n");
  return 0;
}
