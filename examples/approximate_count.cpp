// Approximate query answering over a union of joins: the second motivating
// use case of the paper (alongside ML training data).
//
// Estimates COUNT, AVG, and a selectivity over the union of the UQ1 joins
// from an i.i.d. sample, without materializing the union:
//   COUNT(U)              -- from the warm-up union-size estimate,
//   AVG(o_totalprice)     -- sample mean (unbiased under uniformity),
//   share of URGENT-ish orders (o_orderpriority <= 2) -- sample fraction.
// Compares each against the exact answer computed by the FullJoinUnion
// baseline (feasible at example scale only).

#include <cstdio>
#include <unordered_set>

#include "core/exact_overlap.h"
#include "core/random_walk_overlap.h"
#include "core/union_sampler.h"
#include "join/exact_weight.h"
#include "join/membership.h"
#include "workloads/tpch_workloads.h"

using namespace suj;  // NOLINT: example brevity

int main() {
  tpch::OverlapConfig config;
  config.per_variant.scale_factor = 0.6;
  config.num_variants = 4;
  config.overlap_scale = 0.25;
  auto workload = workloads::BuildUQ1(config).value();

  // Warm-up (random walks) + Algorithm 1 sample.
  CompositeIndexCache cache;
  auto walker =
      RandomWalkOverlapEstimator::Create(workload.joins, &cache).value();
  Rng rng(123);
  if (!walker->Warmup(rng).ok()) return 1;
  UnionEstimates estimates = ComputeUnionEstimates(walker.get()).value();

  std::vector<std::unique_ptr<JoinSampler>> samplers;
  for (const auto& join : workload.joins) {
    samplers.push_back(ExactWeightSampler::Create(join, &cache).value());
  }
  auto probers = BuildProbers(workload.joins).value();
  UnionSampler::Options options;
  options.mode = UnionSampler::Mode::kMembershipOracle;
  auto sampler = UnionSampler::Create(workload.joins, std::move(samplers),
                                      estimates, probers, options)
                     .value();
  const size_t n = 4000;
  std::vector<Tuple> sample = sampler->Sample(n, rng).value();

  const Schema& schema = workload.joins[0]->output_schema();
  int price = schema.FieldIndex("o_totalprice");
  int priority = schema.FieldIndex("o_orderpriority");

  double sum_price = 0.0;
  size_t urgent = 0;
  for (const auto& t : sample) {
    sum_price += t.value(price).dbl();
    if (t.value(priority).int64() <= 2) ++urgent;
  }
  double est_avg = sum_price / static_cast<double>(n);
  double est_urgent = static_cast<double>(urgent) / static_cast<double>(n);

  // Exact answers via FullJoinUnion (the expensive path we avoided above).
  auto exact = ExactOverlapCalculator::Create(workload.joins).value();
  double exact_sum = 0.0;
  size_t exact_urgent = 0;
  std::unordered_set<std::string> seen;
  FullJoinExecutor executor(&cache);
  for (const auto& join : workload.joins) {
    auto result = executor.Execute(join).value();
    for (const auto& t : result.tuples) {
      if (!seen.insert(t.Encode()).second) continue;  // set union
      exact_sum += t.value(price).dbl();
      if (t.value(priority).int64() <= 2) ++exact_urgent;
    }
  }
  double u = static_cast<double>(exact->UnionSize());
  double exact_avg = exact_sum / u;
  double exact_urgent_share = static_cast<double>(exact_urgent) / u;

  std::printf("metric                estimate        exact         rel.err\n");
  std::printf("COUNT(U)              %-15.0f %-13.0f %.3f\n",
              estimates.union_size_eq1, u,
              std::abs(estimates.union_size_eq1 - u) / u);
  std::printf("AVG(o_totalprice)     %-15.2f %-13.2f %.3f\n", est_avg,
              exact_avg, std::abs(est_avg - exact_avg) / exact_avg);
  std::printf("share(priority<=2)    %-15.4f %-13.4f %.3f\n", est_urgent,
              exact_urgent_share,
              std::abs(est_urgent - exact_urgent_share) /
                  exact_urgent_share);
  std::printf("\n(%zu-tuple i.i.d. sample vs full union of %zu joins)\n", n,
              workload.joins.size());
  return 0;
}
